"""strace-style trace formatting and parsing.

Renders a :class:`~repro.core.tracing.SyscallTrace` the way ``strace -c``
and plain ``strace`` do, and parses plain traces back -- so manifests can
be derived from trace files captured elsewhere (the interchange format for
the paper's dynamic-analysis tooling ecosystem: DockerSlim, Twistlock).
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Tuple, Union

from repro.syscall.table import SYSCALLS

_LINE_RE = re.compile(
    r"^(?P<name>[A-Za-z_][A-Za-z0-9_]*)\((?P<args>[^)]*)\)\s*=\s*"
    r"(?P<ret>-?\d+|\?)"
)

#: A formattable event: a bare syscall name (return value 0) or a
#: ``(name, ret)`` pair, where ``ret=None`` renders strace's "no return"
#: marker ``?`` (a call interrupted by process death).
TraceEvent = Union[str, Tuple[str, Optional[int]]]


def format_trace(events: Iterable[TraceEvent]) -> str:
    """Render events as plain strace lines.

    The formatter is the write side of the interchange format and emits
    only lines :func:`parse_trace` accepts: unknown syscall names raise
    ``ValueError`` instead of silently producing lines the parser would
    drop, and every return value the parser's grammar admits (integers
    and ``?``) can be emitted.
    """
    lines = []
    for event in events:
        if isinstance(event, str):
            name: str = event
            ret: Optional[int] = 0
        else:
            name, ret = event
        if name not in SYSCALLS:
            raise ValueError(f"unknown syscall in trace: {name!r}")
        lines.append(f"{name}() = {'?' if ret is None else ret}")
    return "\n".join(lines) + "\n"


def format_summary(counts: dict, total_ns: float = 0.0) -> str:
    """Render an ``strace -c`` style summary table."""
    total_calls = sum(counts.values()) or 1
    header = f"{'% time':>7} {'calls':>9}  syscall"
    lines = [header, "-" * len(header)]
    for name, count in sorted(counts.items(), key=lambda item: -item[1]):
        share = 100.0 * count / total_calls
        lines.append(f"{share:>6.2f}% {count:>9}  {name}")
    lines.append("-" * len(header))
    lines.append(f"{'100.00%':>7} {total_calls:>9}  total")
    return "\n".join(lines)


def parse_trace_events(
    text: str, strict: bool = False
) -> List[Tuple[str, Optional[int]]]:
    """Parse plain strace output into ordered ``(name, ret)`` pairs.

    ``ret`` is the integer return value, or ``None`` for the ``?``
    marker.  Lines that do not look like syscalls (signal deliveries,
    resumptions, exit notices) are skipped.  Unknown syscall names are
    skipped too unless *strict*, in which case they raise -- useful for
    catching typos in hand-written trace fixtures.
    """
    events: List[Tuple[str, Optional[int]]] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith(("+++", "---")):
            continue
        match = _LINE_RE.match(line)
        if match is None:
            continue
        name = match.group("name")
        if name not in SYSCALLS:
            if strict:
                raise ValueError(f"unknown syscall in trace: {name!r}")
            continue
        ret = match.group("ret")
        events.append((name, None if ret == "?" else int(ret)))
    return events


def parse_trace(text: str, strict: bool = False) -> List[str]:
    """Parse plain strace output into an ordered syscall-name list."""
    return [name for name, _ in parse_trace_events(text, strict=strict)]


def roundtrip(events: Iterable[TraceEvent]) -> Tuple[list, bool]:
    """Format then parse; returns (parsed, lossless?).

    Bare-name event lists parse back to names; if any event carries an
    explicit return value, the comparison is over ``(name, ret)`` pairs
    (bare names normalize to return value 0).
    """
    events = list(events)
    if all(isinstance(event, str) for event in events):
        parsed: list = parse_trace(format_trace(events))
        return parsed, parsed == events
    want = [
        (event, 0) if isinstance(event, str) else (event[0], event[1])
        for event in events
    ]
    parsed = parse_trace_events(format_trace(events))
    return parsed, parsed == want
