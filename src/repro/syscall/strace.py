"""strace-style trace formatting and parsing.

Renders a :class:`~repro.core.tracing.SyscallTrace` the way ``strace -c``
and plain ``strace`` do, and parses plain traces back -- so manifests can
be derived from trace files captured elsewhere (the interchange format for
the paper's dynamic-analysis tooling ecosystem: DockerSlim, Twistlock).
"""

from __future__ import annotations

import re
from typing import Iterable, List, Tuple

from repro.syscall.table import SYSCALLS

_LINE_RE = re.compile(
    r"^(?P<name>[A-Za-z_][A-Za-z0-9_]*)\((?P<args>[^)]*)\)\s*=\s*"
    r"(?P<ret>-?\d+|\?)"
)


def format_trace(events: Iterable[str]) -> str:
    """Render events as plain strace lines (zero return values)."""
    lines = []
    for name in events:
        lines.append(f"{name}() = 0")
    return "\n".join(lines) + "\n"


def format_summary(counts: dict, total_ns: float = 0.0) -> str:
    """Render an ``strace -c`` style summary table."""
    total_calls = sum(counts.values()) or 1
    header = f"{'% time':>7} {'calls':>9}  syscall"
    lines = [header, "-" * len(header)]
    for name, count in sorted(counts.items(), key=lambda item: -item[1]):
        share = 100.0 * count / total_calls
        lines.append(f"{share:>6.2f}% {count:>9}  {name}")
    lines.append("-" * len(header))
    lines.append(f"{'100.00%':>7} {total_calls:>9}  total")
    return "\n".join(lines)


def parse_trace(text: str, strict: bool = False) -> List[str]:
    """Parse plain strace output into an ordered syscall list.

    Lines that do not look like syscalls (signal deliveries, resumptions,
    exit notices) are skipped.  Unknown syscall names are skipped too
    unless *strict*, in which case they raise -- useful for catching
    typos in hand-written trace fixtures.
    """
    events: List[str] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith(("+++", "---")):
            continue
        match = _LINE_RE.match(line)
        if match is None:
            continue
        name = match.group("name")
        if name not in SYSCALLS:
            if strict:
                raise ValueError(f"unknown syscall in trace: {name!r}")
            continue
        events.append(name)
    return events


def roundtrip(events: Iterable[str]) -> Tuple[List[str], bool]:
    """Format then parse; returns (parsed, lossless?)."""
    events = list(events)
    parsed = parse_trace(format_trace(events))
    return parsed, parsed == events
