"""Container slimming: the DockerSlim step of the Lupine pipeline.

The paper (footnote 3) relies on tools like DockerSlim to "help ensure a
minimal dependency set" in the rootfs.  This module implements that step:
given a container image and the application manifest, keep only the files
the unikernel can ever touch -- the entrypoint binary and its library
chain, the shell needed by the generated startup script, and the app's
configuration files -- and drop everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.manifest import ApplicationManifest
from repro.rootfs.container import ContainerImage, FileEntry, Layer

#: Files every Lupine rootfs keeps regardless of the app: the startup
#: script's interpreter and the dynamic loader/libc chain.
_ALWAYS_KEEP_PREFIXES: Tuple[str, ...] = (
    "/lib/",
    "/bin/sh",
    "/bin/busybox",
)


@dataclass(frozen=True)
class SlimReport:
    """Outcome of slimming one container image."""

    original_files: int
    kept_files: int
    original_kb: float
    kept_kb: float

    @property
    def dropped_files(self) -> int:
        return self.original_files - self.kept_files

    @property
    def size_reduction(self) -> float:
        if self.original_kb == 0:
            return 0.0
        return 1.0 - self.kept_kb / self.original_kb


def _is_referenced(
    path: str,
    entry: FileEntry,
    entrypoint_binary: str,
    app_prefixes: Tuple[str, ...],
) -> bool:
    if path == entrypoint_binary:
        return True
    if any(path.startswith(prefix) or path == prefix.rstrip("/")
           for prefix in _ALWAYS_KEEP_PREFIXES):
        return True
    if any(path.startswith(prefix) for prefix in app_prefixes):
        return True
    if entry.symlink_to is not None:
        return False  # judged by the target's own referencedness
    return False


def slim_container(
    image: ContainerImage, manifest: ApplicationManifest
) -> Tuple[ContainerImage, SlimReport]:
    """Return a slimmed copy of *image* plus the savings report.

    Symlinks are kept when their targets are kept, so ``/bin/sh ->
    /bin/busybox`` survives.  ``/etc`` entries for the app itself survive;
    unrelated distro metadata does not.
    """
    entrypoint_binary = (manifest.entrypoint or image.entrypoint or ("",))[0]
    app_prefixes = (
        f"/etc/{manifest.app_name}",
        f"/usr/lib/{manifest.app_name}",
        f"/var/lib/{manifest.app_name}",
    )
    flattened = image.flatten()
    kept: Dict[str, FileEntry] = {}
    for path, entry in flattened.items():
        if entry.symlink_to is not None:
            continue  # second pass
        if _is_referenced(path, entry, entrypoint_binary, app_prefixes):
            kept[path] = entry
    for path, entry in flattened.items():
        if entry.symlink_to is not None and entry.symlink_to in kept:
            kept[path] = entry

    if manifest.needs_network:
        # The init script needs resolv.conf for name resolution.
        resolv = flattened.get("/etc/resolv.conf")
        if resolv is not None:
            kept[resolv.path] = resolv

    slimmed = ContainerImage(
        name=f"{image.name}-slim",
        tag=image.tag,
        entrypoint=image.entrypoint,
        env=image.env,
        working_dir=image.working_dir,
    )
    slimmed.add_layer(Layer(name="slim", files=sorted(
        kept.values(), key=lambda e: e.path
    )))
    report = SlimReport(
        original_files=len(flattened),
        kept_files=len(kept),
        original_kb=sum(e.size_kb for e in flattened.values()),
        kept_kb=sum(e.size_kb for e in kept.values()),
    )
    return slimmed, report
