"""A small ext2 image builder.

Lays out a flattened container filesystem into ext2-style structures
(superblock, inode table, block bitmap, data blocks with indirect blocks for
large files) and computes the resulting image size.  The structure is real
enough to round-trip: files can be listed and read back out of the image
model, which the Lupine guest uses to locate the startup script and the
application binary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.rootfs.container import FileEntry

BLOCK_SIZE = 1024
INODE_SIZE = 128
POINTERS_PER_BLOCK = BLOCK_SIZE // 4
DIRECT_POINTERS = 12


class Ext2Error(ValueError):
    """Raised for malformed filesystems (duplicate paths, no room)."""


@dataclass
class Inode:
    """One ext2 inode."""

    number: int
    path: str
    size_bytes: int
    is_directory: bool = False
    symlink_target: Optional[str] = None
    executable: bool = False

    @property
    def data_blocks(self) -> int:
        if self.symlink_target is not None and len(self.symlink_target) < 60:
            return 0  # fast symlink, target stored in the inode
        return (self.size_bytes + BLOCK_SIZE - 1) // BLOCK_SIZE

    @property
    def indirect_blocks(self) -> int:
        """Single/double indirect pointer blocks needed for this file."""
        blocks = self.data_blocks
        if blocks <= DIRECT_POINTERS:
            return 0
        remaining = blocks - DIRECT_POINTERS
        single = 1
        if remaining <= POINTERS_PER_BLOCK:
            return single
        remaining -= POINTERS_PER_BLOCK
        double_leaves = (remaining + POINTERS_PER_BLOCK - 1) // POINTERS_PER_BLOCK
        return single + 1 + double_leaves

    @property
    def total_blocks(self) -> int:
        return self.data_blocks + self.indirect_blocks


@dataclass
class Ext2Image:
    """A built ext2 image."""

    label: str
    inodes: Dict[str, Inode] = field(default_factory=dict)

    @property
    def inode_count(self) -> int:
        return len(self.inodes)

    @property
    def data_block_count(self) -> int:
        return sum(inode.total_blocks for inode in self.inodes.values())

    @property
    def size_kb(self) -> float:
        """Total image size: metadata + bitmaps + inode table + data."""
        superblock_blocks = 2  # boot block + superblock/group descriptors
        inode_table_blocks = (
            self.inode_count * INODE_SIZE + BLOCK_SIZE - 1
        ) // BLOCK_SIZE
        bitmap_blocks = 2 + self.data_block_count // (8 * BLOCK_SIZE)
        directory_blocks = sum(
            1 for inode in self.inodes.values() if inode.is_directory
        )
        total_blocks = (
            superblock_blocks
            + inode_table_blocks
            + bitmap_blocks
            + directory_blocks
            + self.data_block_count
        )
        return total_blocks * BLOCK_SIZE / 1024.0

    # -- read-back --------------------------------------------------------

    def lookup(self, path: str) -> Inode:
        try:
            return self.inodes[path]
        except KeyError:
            raise Ext2Error(f"no such file in image: {path}") from None

    def exists(self, path: str) -> bool:
        return path in self.inodes

    def list_directory(self, path: str) -> List[str]:
        prefix = path.rstrip("/") + "/"
        names = set()
        for candidate in self.inodes:
            if candidate.startswith(prefix) and candidate != path:
                remainder = candidate[len(prefix):]
                names.add(remainder.split("/", 1)[0])
        return sorted(names)

    def resolve(self, path: str, _depth: int = 0) -> Inode:
        """Follow symlinks (bounded, like the kernel's ELOOP limit)."""
        if _depth > 8:
            raise Ext2Error(f"too many levels of symbolic links: {path}")
        inode = self.lookup(path)
        if inode.symlink_target is not None:
            return self.resolve(inode.symlink_target, _depth + 1)
        return inode


def _parent_directories(path: str) -> Iterable[str]:
    parts = path.strip("/").split("/")
    for index in range(1, len(parts)):
        yield "/" + "/".join(parts[:index])


def build_ext2(
    files: Iterable[FileEntry], label: str = "lupine-rootfs"
) -> Ext2Image:
    """Build an ext2 image from *files*, creating parent directories."""
    image = Ext2Image(label=label)
    next_inode = 2  # inode 1 reserved, 2 is the root directory
    image.inodes["/"] = Inode(
        number=next_inode, path="/", size_bytes=BLOCK_SIZE, is_directory=True
    )
    for entry in files:
        if entry.path in image.inodes:
            raise Ext2Error(f"duplicate path: {entry.path}")
        for directory in _parent_directories(entry.path):
            if directory not in image.inodes:
                next_inode += 1
                image.inodes[directory] = Inode(
                    number=next_inode,
                    path=directory,
                    size_bytes=BLOCK_SIZE,
                    is_directory=True,
                )
        next_inode += 1
        image.inodes[entry.path] = Inode(
            number=next_inode,
            path=entry.path,
            size_bytes=int(entry.size_kb * 1024),
            symlink_target=entry.symlink_to,
            executable=entry.executable,
        )
    return image
