"""Container image model.

A minimal OCI-ish image: ordered layers of files plus the metadata Lupine
consumes (entrypoint, env).  :func:`container_for_app` synthesizes the
Alpine-based images the paper pulls from Docker Hub, including the musl
libc and the application binary with realistic sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.apps.app import Application
from repro.kml.libc import LibcVariant


@dataclass(frozen=True)
class FileEntry:
    """One file inside a container layer / rootfs."""

    path: str
    size_kb: float
    executable: bool = False
    symlink_to: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.path.startswith("/"):
            raise ValueError(f"container paths must be absolute: {self.path!r}")
        if self.size_kb < 0:
            raise ValueError("file size cannot be negative")


@dataclass
class Layer:
    """One container image layer."""

    name: str
    files: List[FileEntry] = field(default_factory=list)

    @property
    def size_kb(self) -> float:
        return sum(entry.size_kb for entry in self.files)


@dataclass
class ContainerImage:
    """A container image: layers + runtime metadata."""

    name: str
    tag: str = "latest"
    layers: List[Layer] = field(default_factory=list)
    entrypoint: Tuple[str, ...] = ()
    env: Tuple[Tuple[str, str], ...] = ()
    working_dir: str = "/"

    def add_layer(self, layer: Layer) -> None:
        self.layers.append(layer)

    def flatten(self) -> Dict[str, FileEntry]:
        """Apply layers in order; later layers override earlier paths."""
        merged: Dict[str, FileEntry] = {}
        for layer in self.layers:
            for entry in layer.files:
                merged[entry.path] = entry
        return merged

    @property
    def total_size_kb(self) -> float:
        return sum(entry.size_kb for entry in self.flatten().values())


#: Alpine 3.10 base layer contents (the userspace the paper uses).
_ALPINE_BASE = (
    FileEntry("/bin/busybox", 820.0, executable=True),
    FileEntry("/bin/sh", 0.0, symlink_to="/bin/busybox"),
    FileEntry("/etc/passwd", 1.0),
    FileEntry("/etc/group", 1.0),
    FileEntry("/etc/resolv.conf", 1.0),
    FileEntry("/lib/libz.so.1", 96.0),
    FileEntry("/lib/apk/db/installed", 24.0),
)

_MUSL_SIZE_KB = 584.0


def alpine_base_layer(libc: LibcVariant = LibcVariant.MUSL) -> Layer:
    """The Alpine base layer with the requested libc variant."""
    files = list(_ALPINE_BASE)
    files.append(
        FileEntry(
            "/lib/ld-musl-x86_64.so.1",
            _MUSL_SIZE_KB * (1.002 if libc is LibcVariant.MUSL_KML else 1.0),
            executable=True,
        )
    )
    files.append(FileEntry("/lib/libc.musl-x86_64.so.1", 0.0,
                           symlink_to="/lib/ld-musl-x86_64.so.1"))
    return Layer(name=f"alpine-3.10-{libc.value}", files=files)


def container_for_app(
    app: Application, libc: LibcVariant = LibcVariant.MUSL
) -> ContainerImage:
    """Synthesize the Docker Hub container image for *app*."""
    image = ContainerImage(
        name=app.name,
        entrypoint=tuple(app.entrypoint),
        env=tuple(app.env) + (("PATH", "/usr/sbin:/usr/bin:/sbin:/bin"),),
    )
    image.add_layer(alpine_base_layer(libc))
    binary_path = app.entrypoint[0]
    app_files = [
        FileEntry(binary_path, float(app.binary_size_kb), executable=True),
        FileEntry(f"/etc/{app.name}/{app.name}.conf", 4.0),
    ]
    if app.binary_size_kb > 4096:
        app_files.append(
            FileEntry(f"/usr/lib/{app.name}/modules.so",
                      app.binary_size_kb * 0.2)
        )
    image.add_layer(Layer(name=f"{app.name}-app", files=app_files))
    return image
