"""Root filesystem substrate.

Models the right half of the paper's Figure 2: a Docker container image
(metadata + layers of files) is converted into an ext2 root filesystem
containing the unmodified application binary, a (possibly KML-patched) libc,
and a generated application-specific startup script that replaces a
general-purpose init system.
"""

from repro.rootfs.container import ContainerImage, FileEntry, container_for_app
from repro.rootfs.ext2 import Ext2Error, Ext2Image, build_ext2
from repro.rootfs.init import generate_init_script

__all__ = [
    "ContainerImage",
    "Ext2Error",
    "Ext2Image",
    "FileEntry",
    "build_ext2",
    "container_for_app",
    "generate_init_script",
]
