"""Export figures as gnuplot-style ``.dat`` blocks.

One block per series (blank-line separated, gnuplot ``index`` convention),
two columns per row: x and y.  Non-numeric x values (system names on bar
charts) are written as a comment column plus an ordinal, so the files plot
directly with ``plot 'fig6.dat' index 0 using 1:2:xtic(3)``.
"""

from __future__ import annotations

from typing import List

from repro.metrics.reporting import Figure


def figure_to_dat(figure: Figure) -> str:
    """Render *figure* as gnuplot data blocks."""
    blocks: List[str] = [f"# {figure.title}",
                         f"# x: {figure.x_label}  y: {figure.y_label}"]
    for series in figure.series:
        lines = [f"# series: {series.name}"]
        for ordinal, (x, y) in enumerate(series.points):
            if y is None or y != y or y == float("inf"):
                y_text = "nan"
            else:
                y_text = f"{float(y):.6g}"
            if isinstance(x, (int, float)):
                lines.append(f"{x} {y_text}")
            else:
                lines.append(f"{ordinal} {y_text} \"{x}\"")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks) + "\n"


def parse_dat(text: str) -> List[List[tuple]]:
    """Parse a ``.dat`` file back into series point lists (for tests)."""
    series: List[List[tuple]] = []
    current: List[tuple] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            if current:
                series.append(current)
                current = []
            continue
        if line.startswith("# series:") and current:
            series.append(current)
            current = []
        if line.startswith("#"):
            continue
        parts = line.split()
        x = float(parts[0])
        y = float(parts[1])
        if len(parts) > 2:
            current.append((parts[2].strip('"'), y))
        else:
            current.append((x, y))
    if current:
        series.append(current)
    return series
