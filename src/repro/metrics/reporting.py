"""Plain-text renderers for the paper's tables and figures.

Benchmarks print through these so their output lines up with the paper's
rows/series; the same structures feed EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Union

Cell = Union[str, int, float, None]


@dataclass
class Table:
    """A paper-style table: header + rows."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[Cell]] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} "
                "columns"
            )
        self.rows.append(cells)


@dataclass
class Figure:
    """A paper-style figure rendered as labelled series."""

    title: str
    x_label: str
    y_label: str
    series: List["Series"] = field(default_factory=list)

    def add_series(self, name: str, points: Sequence[tuple]) -> None:
        self.series.append(Series(name=name, points=list(points)))


@dataclass
class Series:
    name: str
    points: List[tuple]


def _format_cell(cell: Cell, width: int = 0) -> str:
    if cell is None:
        text = "-"
    elif isinstance(cell, float):
        magnitude = abs(cell)
        if magnitude != 0 and magnitude < 0.01:
            text = f"{cell:.5f}"
        elif magnitude < 10:
            text = f"{cell:.3f}"
        else:
            text = f"{cell:,.1f}"
    else:
        text = str(cell)
    return text.rjust(width) if width else text


def render_table(table: Table) -> str:
    """Render a table as aligned plain text."""
    formatted_rows = [
        [_format_cell(cell) for cell in row] for row in table.rows
    ]
    widths = [len(h) for h in table.headers]
    for row in formatted_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [table.title, ""]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in
                           enumerate(table.headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in
                               enumerate(row)))
    return "\n".join(lines)


def render_figure(figure: Figure, bar_width: int = 40) -> str:
    """Render a figure as labelled series with ASCII bars."""
    lines = [figure.title, f"  x: {figure.x_label}   y: {figure.y_label}", ""]
    peak = 0.0
    for series in figure.series:
        for _, y in series.points:
            if isinstance(y, (int, float)) and y == y and y != float("inf"):
                peak = max(peak, float(y))
    for series in figure.series:
        lines.append(f"[{series.name}]")
        for x, y in series.points:
            if y is None or y != y or y == float("inf"):
                lines.append(f"  {str(x):>12}  N/A")
                continue
            bar = "#" * int(round(bar_width * float(y) / peak)) if peak else ""
            lines.append(f"  {str(x):>12}  {_format_cell(float(y)):>10}  {bar}")
    return "\n".join(lines)


def render_markdown_table(table: Table) -> str:
    """Render a table as GitHub markdown (for EXPERIMENTS.md)."""
    lines = [f"**{table.title}**", ""]
    lines.append("| " + " | ".join(table.headers) + " |")
    lines.append("|" + "|".join("---" for _ in table.headers) + "|")
    for row in table.rows:
        lines.append("| " + " | ".join(_format_cell(c) for c in row) + " |")
    return "\n".join(lines)
