"""Measurement helpers and table/figure renderers."""

from repro.metrics.reporting import Figure, Table, render_figure, render_table

__all__ = ["Figure", "Table", "render_figure", "render_table"]
