"""Measurement helpers, table/figure renderers, and run telemetry."""

from repro.metrics.reporting import Figure, Table, render_figure, render_table
from repro.metrics.telemetry import ExperimentTelemetry, RunTelemetry

__all__ = [
    "ExperimentTelemetry",
    "Figure",
    "RunTelemetry",
    "Table",
    "render_figure",
    "render_table",
]
