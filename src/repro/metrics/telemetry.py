"""Structured run telemetry for the experiment harness.

Every harness run produces a :class:`RunTelemetry`: per-experiment wall
time and result-cache outcome, plus run-level kernel-build accounting
(builds performed vs. reused out of the shared
:class:`~repro.core.buildcache.KernelBuildCache`).  Serialized as a JSON
run manifest under ``benchmarks/output/`` so runs are comparable across
machines and commits.  The manifest schema is documented in
EXPERIMENTS.md ("Run manifest schema") and consumed by the regression
gate (:mod:`repro.observe.regress`).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List


@dataclass
class ExperimentTelemetry:
    """What one experiment cost in this run."""

    name: str
    fingerprint: str
    cache_hit: bool
    wall_ms: float

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass
class RunTelemetry:
    """Aggregate telemetry for one harness run."""

    jobs: int
    total_wall_ms: float = 0.0
    experiments: List[ExperimentTelemetry] = field(default_factory=list)
    kernel_builds_performed: int = 0
    kernel_builds_reused: int = 0
    kernel_cache_entries: int = 0

    @property
    def result_cache_hits(self) -> int:
        return sum(1 for e in self.experiments if e.cache_hit)

    @property
    def result_cache_misses(self) -> int:
        return sum(1 for e in self.experiments if not e.cache_hit)

    @property
    def result_cache_hit_rate(self) -> float:
        if not self.experiments:
            return 0.0
        return self.result_cache_hits / len(self.experiments)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": 1,
            "jobs": self.jobs,
            "total_wall_ms": self.total_wall_ms,
            "experiments": [e.to_dict() for e in self.experiments],
            "result_cache": {
                "hits": self.result_cache_hits,
                "misses": self.result_cache_misses,
                "hit_rate": self.result_cache_hit_rate,
            },
            "kernel_builds": {
                "performed": self.kernel_builds_performed,
                "reused": self.kernel_builds_reused,
                "cache_entries": self.kernel_cache_entries,
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
