"""Structured run telemetry for the experiment harness.

Every harness run produces a :class:`RunTelemetry`: per-experiment wall
time, result-cache outcome and final *status* (``ok`` / ``cache_hit`` /
``failed`` / ``timed_out``, with attempt count and captured error), plus
run-level kernel-build accounting (builds performed vs. reused out of the
shared :class:`~repro.core.buildcache.KernelBuildCache`).  Serialized as
a JSON run manifest (schema_version 2) under ``benchmarks/output/`` so
runs are comparable across machines and commits -- and so a *partial*
run (experiments failed or timed out) still lands a complete manifest.
The manifest schema is documented in EXPERIMENTS.md ("Run manifest
schema") and consumed by the regression gate
(:mod:`repro.observe.regress`) and the chaos gate
(:mod:`repro.faults.chaos`).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

#: Manifest format version.  2 added per-experiment ``status`` /
#: ``attempts`` / ``error`` and the top-level ``failures`` count.
MANIFEST_SCHEMA_VERSION = 2

#: Statuses that mean the experiment produced a result this run.
OK_STATUSES = ("ok", "cache_hit")


@dataclass
class ExperimentTelemetry:
    """What one experiment cost in this run -- and how it ended."""

    name: str
    fingerprint: str
    cache_hit: bool
    wall_ms: float
    status: str = "ok"            # "ok" | "cache_hit" | "failed" | "timed_out"
    attempts: int = 1
    error: Optional[str] = None   # "ErrorType: message" for failed/timed_out

    @property
    def ok(self) -> bool:
        return self.status in OK_STATUSES

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass
class RunTelemetry:
    """Aggregate telemetry for one harness run."""

    jobs: int
    #: Workers actually used: ``min(jobs, len(selected))``, floored at 1.
    #: ``jobs`` records what was *requested*; a 2-experiment run at
    #: ``--jobs 8`` still only occupies 2 pool threads.
    effective_jobs: int = 1
    total_wall_ms: float = 0.0
    experiments: List[ExperimentTelemetry] = field(default_factory=list)
    kernel_builds_performed: int = 0
    kernel_builds_reused: int = 0
    kernel_cache_entries: int = 0

    @property
    def result_cache_hits(self) -> int:
        return sum(1 for e in self.experiments if e.cache_hit)

    @property
    def result_cache_misses(self) -> int:
        return sum(1 for e in self.experiments if not e.cache_hit)

    @property
    def result_cache_hit_rate(self) -> float:
        if not self.experiments:
            return 0.0
        return self.result_cache_hits / len(self.experiments)

    @property
    def failed_experiments(self) -> List[ExperimentTelemetry]:
        """Experiments whose final status is not ok/cache_hit."""
        return [e for e in self.experiments if not e.ok]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "jobs": self.jobs,
            "effective_jobs": self.effective_jobs,
            "total_wall_ms": self.total_wall_ms,
            "experiments": [e.to_dict() for e in self.experiments],
            "failures": len(self.failed_experiments),
            "result_cache": {
                "hits": self.result_cache_hits,
                "misses": self.result_cache_misses,
                "hit_rate": self.result_cache_hit_rate,
            },
            "kernel_builds": {
                "performed": self.kernel_builds_performed,
                "reused": self.kernel_builds_reused,
                "cache_entries": self.kernel_cache_entries,
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
