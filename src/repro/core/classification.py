"""The Figure 4 option taxonomy.

Breaks Firecracker's microVM configuration down exactly as the paper does:
283 options survive as ``lupine-base``; 550 are removed, classified as
application-specific (311), multiple-processes (89) or hardware management
(150), with the finer subcategories the text enumerates (about 100 network
options, 35 filesystem, 20 compression, 55 crypto, 65 debug, the 12
syscall-gating options of Table 1, ~20 cgroup/namespace options, 12
security-domain options, 24 power-management options, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.kconfig.database import (
    base_option_names,
    microvm_option_names,
    removed_options_by_category,
    removed_options_by_subcategory,
)

#: Human-readable labels for Figure 4's categories.
CATEGORY_LABELS = {
    "app": "Application-specific",
    "mp": "Multiple Processes",
    "hw": "HW Management",
}


@dataclass(frozen=True)
class OptionClassification:
    """The complete Figure 4 breakdown."""

    microvm: FrozenSet[str]
    lupine_base: FrozenSet[str]
    removed_by_category: Dict[str, FrozenSet[str]]
    removed_by_subcategory: Dict[Tuple[str, str], FrozenSet[str]]

    @property
    def removed(self) -> FrozenSet[str]:
        return self.microvm - self.lupine_base

    def category_counts(self) -> Dict[str, int]:
        """Figure 4's headline numbers."""
        return {
            category: len(names)
            for category, names in self.removed_by_category.items()
        }

    def subcategory_counts(self) -> Dict[Tuple[str, str], int]:
        return {
            key: len(names)
            for key, names in self.removed_by_subcategory.items()
        }

    def category_of(self, option_name: str) -> str:
        """Classify one microVM option: 'base', 'app', 'mp' or 'hw'."""
        if option_name in self.lupine_base:
            return "base"
        for category, names in self.removed_by_category.items():
            if option_name in names:
                return category
        raise KeyError(f"{option_name} is not in the microVM configuration")

    def summary_rows(self) -> List[Tuple[str, int]]:
        """Rows for rendering Figure 4 as a table."""
        rows = [("microVM total", len(self.microvm))]
        for category in ("app", "mp", "hw"):
            rows.append(
                (CATEGORY_LABELS[category],
                 len(self.removed_by_category[category]))
            )
        rows.append(("lupine-base", len(self.lupine_base)))
        return rows


def classify_microvm_options() -> OptionClassification:
    """Build the Figure 4 classification from the option database."""
    return OptionClassification(
        microvm=frozenset(microvm_option_names()),
        lupine_base=frozenset(base_option_names()),
        removed_by_category={
            category: frozenset(names)
            for category, names in removed_options_by_category().items()
        },
        removed_by_subcategory={
            key: frozenset(names)
            for key, names in removed_options_by_subcategory().items()
        },
    )
