"""The evaluated Lupine kernel variants (Section 4, Table 2).

- ``lupine``        : app-specific config + KML.  KML conflicts with
  ``CONFIG_PARAVIRT``, so KML variants drop PARAVIRT (and its dependents),
  which is why Figure 7 reports boot time for ``-nokml``.
- ``lupine-nokml``  : app-specific config, no KML, keeps PARAVIRT.
- ``lupine-tiny``   : optimized for space: -Os plus 9 modified
  space/performance tradeoff options (footnote 8).
- ``lupine-general``: the 19-option union config; not application-specific.
- ``lupine-derived``: app-specific config requested from *observed* usage
  (:mod:`repro.kconfig.derive`) instead of the curated manifest; the
  trace-driven family, with and without KML.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.apps.app import Application
from repro.core.buildcache import BUILD_CACHE, config_fingerprint
from repro.core.manifest import ApplicationManifest
from repro.core.specialization import (
    app_config_names,
    derived_app_config_names,
    lupine_general_names,
)
from repro.kbuild.builder import KernelBuilder
from repro.kbuild.image import KernelImage
from repro.kconfig.configs import lupine_base_config, microvm_config
from repro.kconfig.database import base_option_names, build_linux_tree
from repro.kconfig.resolver import ResolvedConfig, Resolver
from repro.kml.patch import KmlPatch
from repro.netstack.path import NetworkPath
from repro.simcore.clock import VirtualClock
from repro.syscall.cpu import EntryMechanism
from repro.syscall.dispatch import SyscallEngine

#: PARAVIRT and everything that needs it: dropped by KML variants.
_PARAVIRT_FAMILY = ("PARAVIRT", "PARAVIRT_CLOCK", "KVM_GUEST")

#: The -tiny variant's 9 modified options: 7 disabled, 2 enabled
#: (CONFIG_BASE_FULL -> BASE_SMALL, -O2 -> -Os among them).
TINY_DISABLED: Tuple[str, ...] = (
    "BASE_FULL",
    "IKCONFIG",
    "JUMP_LABEL",
    "PRINTK_TIME",
    "CC_OPTIMIZE_FOR_PERFORMANCE",
    "ELF_CORE",
    "CROSS_MEMORY_ATTACH",
)
TINY_ENABLED: Tuple[str, ...] = ("BASE_SMALL", "CC_OPTIMIZE_FOR_SIZE")


class Variant(enum.Enum):
    """The named variants of Table 4."""

    LUPINE = "lupine"
    LUPINE_TINY = "lupine-tiny"
    LUPINE_NOKML = "lupine-nokml"
    LUPINE_NOKML_TINY = "lupine-nokml-tiny"
    LUPINE_GENERAL = "lupine-general"
    LUPINE_GENERAL_NOKML = "lupine-nokml-general"
    LUPINE_DERIVED = "lupine-derived"
    LUPINE_DERIVED_NOKML = "lupine-nokml-derived"

    @property
    def kml(self) -> bool:
        return self in (Variant.LUPINE, Variant.LUPINE_TINY,
                        Variant.LUPINE_GENERAL, Variant.LUPINE_DERIVED)

    @property
    def tiny(self) -> bool:
        return self in (Variant.LUPINE_TINY, Variant.LUPINE_NOKML_TINY)

    @property
    def general(self) -> bool:
        return self in (Variant.LUPINE_GENERAL, Variant.LUPINE_GENERAL_NOKML)

    @property
    def derived(self) -> bool:
        """Config requested from observed usage instead of curation."""
        return self in (Variant.LUPINE_DERIVED, Variant.LUPINE_DERIVED_NOKML)


@dataclass(frozen=True)
class VariantBuild:
    """A built variant: resolved config + kernel image + runtime knobs."""

    variant: Variant
    config: ResolvedConfig
    image: KernelImage
    #: Content fingerprint of the configuration this image was built from;
    #: two builds with the same fingerprint are the same kernel.
    fingerprint: str = ""

    @property
    def kml(self) -> bool:
        return self.image.kml_enabled

    @property
    def entry_mechanism(self) -> EntryMechanism:
        return EntryMechanism.KML_CALL if self.kml else EntryMechanism.SYSCALL

    @property
    def size_optimized(self) -> bool:
        return "CC_OPTIMIZE_FOR_SIZE" in self.config

    def syscall_engine(self, kpti: bool = False,
                       clock: Optional[VirtualClock] = None) -> SyscallEngine:
        """A fresh engine for this kernel; *clock* binds it to a guest's
        timeline (omitted: a private clock, the standalone idiom)."""
        return SyscallEngine.for_config(
            self.config.enabled,
            entry=self.entry_mechanism,
            kpti=kpti,
            size_optimized=self.size_optimized,
            clock=clock,
        )

    def network_path(self) -> NetworkPath:
        return NetworkPath.for_options(
            self.config.enabled, size_optimized=self.size_optimized
        )


def _variant_names(
    target: Union[Application, ApplicationManifest, None],
    variant: Variant,
) -> List[str]:
    if variant.general:
        names = list(lupine_general_names())
    elif variant.derived:
        if target is None:
            raise ValueError(
                "derived variants specialize to observed usage; "
                "pass a target application"
            )
        names = list(derived_app_config_names(target))
    elif target is None:
        # No application: the bare lupine-base kernel (enough for hello
        # world, the Figure 6/7 measurement target).
        names = list(base_option_names())
    else:
        names = list(app_config_names(target))
    if variant.tiny:
        removed = set(TINY_DISABLED)
        names = [n for n in names if n not in removed]
        names.extend(TINY_ENABLED)
    if variant.kml:
        paravirt = set(_PARAVIRT_FAMILY)
        names = [n for n in names if n not in paravirt]
        names.append("KERNEL_MODE_LINUX")
    return names


def variant_fingerprint(
    variant: Variant,
    target: Union[Application, ApplicationManifest, None] = None,
) -> str:
    """Content fingerprint of the kernel *variant* would build for *target*.

    Computable without building: two (variant, target) pairs with equal
    fingerprints resolve to the identical kernel image.
    """
    names = _variant_names(target, variant)
    patches: Tuple[str, ...] = ("kml",) if variant.kml else ()
    return config_fingerprint(names, kml=variant.kml, patches=patches)


def build_variant(
    variant: Variant,
    target: Union[Application, ApplicationManifest, None] = None,
) -> VariantBuild:
    """Build one Lupine variant for *target* (None => hello-world-ish base).

    KML variants build against the KML-patched tree; others against the
    pristine Linux 4.0 tree.  Builds are served from the process-wide
    :data:`~repro.core.buildcache.BUILD_CACHE`, content-addressed on the
    configuration fingerprint: every caller requesting the same resolved
    option set shares one build.
    """
    fingerprint = variant_fingerprint(variant, target)

    def _build() -> VariantBuild:
        if variant.kml:
            tree = KmlPatch().apply("4.0")
            patches: Tuple[str, ...] = ("kml",)
        else:
            tree = build_linux_tree()
            patches = ()
        names = _variant_names(target, variant)
        target_name = (
            "general" if (variant.general or target is None) else (
                target.name
                if isinstance(target, Application)
                else target.app_name
            )
        )
        # Every variant is a small request delta against lupine-base, so
        # derive it warm from the shared base fixpoint (resolved once per
        # tree and served from the resolution cache thereafter).
        config = Resolver(tree).resolve_names_from(
            lupine_base_config(tree), names,
            name=f"{variant.value}[{target_name}]",
        )
        image = KernelBuilder().build(
            config, name=config.name, kml=variant.kml, patches=patches
        )
        return VariantBuild(
            variant=variant, config=config, image=image,
            fingerprint=fingerprint,
        )

    # The cache key carries the variant so cosmetically different variants
    # that happen to resolve identically keep their own reporting identity;
    # the stored ``fingerprint`` is the pure content hash.
    return BUILD_CACHE.get_or_build(f"{variant.value}:{fingerprint}", _build)


@dataclass(frozen=True)
class MicrovmBuild:
    """The baseline: Firecracker's microVM kernel (Table 2's 'MicroVM')."""

    config: ResolvedConfig
    image: KernelImage
    fingerprint: str = ""

    entry_mechanism: EntryMechanism = EntryMechanism.SYSCALL
    size_optimized: bool = False

    def syscall_engine(self, kpti: bool = False,
                       clock: Optional[VirtualClock] = None) -> SyscallEngine:
        return SyscallEngine.for_config(
            self.config.enabled, entry=self.entry_mechanism, kpti=kpti,
            clock=clock,
        )

    def network_path(self) -> NetworkPath:
        return NetworkPath.for_options(self.config.enabled)


def build_microvm() -> MicrovmBuild:
    """Build the microVM baseline kernel (shared via the build cache)."""

    def _build() -> MicrovmBuild:
        config = microvm_config()
        image = KernelBuilder().build(config, name="microvm")
        fingerprint = config_fingerprint(config.enabled)
        return MicrovmBuild(
            config=config, image=image, fingerprint=fingerprint
        )

    return BUILD_CACHE.get_or_build("microvm:baseline", _build)
