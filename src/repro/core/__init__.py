"""The paper's contribution: Lupine Linux.

- :mod:`repro.core.manifest` -- application manifests and their generation
  (the paper assumes a manifest exists; we also implement the
  dynamic-analysis generator it leaves to future work).
- :mod:`repro.core.specialization` -- Kconfig specialization: lupine-base,
  per-application configs, and lupine-general (Section 3.1).
- :mod:`repro.core.classification` -- the Figure 4 option taxonomy.
- :mod:`repro.core.variants` -- the evaluated kernel variants: lupine,
  -nokml, -tiny, -general and combinations (Section 4).
- :mod:`repro.core.lupine` -- the build pipeline of Figure 2: container
  image + manifest -> specialized kernel + ext2 rootfs + startup script,
  and the booted guest with graceful degradation (Section 5).
"""

from repro.core.classification import OptionClassification, classify_microvm_options
from repro.core.lupine import LupineBuilder, LupineGuest, LupineUnikernel
from repro.core.manifest import ApplicationManifest, derive_options, generate_manifest
from repro.core.specialization import (
    app_config,
    app_option_requirements,
    lupine_general_config,
    lupine_general_names,
)
from repro.core.variants import Variant, VariantBuild, build_variant

__all__ = [
    "ApplicationManifest",
    "LupineBuilder",
    "LupineGuest",
    "LupineUnikernel",
    "OptionClassification",
    "Variant",
    "VariantBuild",
    "app_config",
    "app_option_requirements",
    "build_variant",
    "classify_microvm_options",
    "derive_options",
    "generate_manifest",
    "lupine_general_config",
    "lupine_general_names",
]
