"""The ``bench-derive`` microbenchmark: the Loupe loop, counted and pinned.

Runs the full trace-driven specialization pipeline for every curated
application profile (the paper's top-20): record the app's usage under a
:class:`~repro.syscall.usage.UsageTrace`, derive a configuration from
the observation (:mod:`repro.kconfig.derive`), minimize the request set,
and audit the result against the curated config.

The emitted JSON is shaped like ``metrics.json`` (``counters`` /
``gauges`` / ``digests`` / ``histograms``); the checked-in snapshot
lives at ``benchmarks/baseline/BENCH_derive.json``.  ``check_result``
enforces the acceptance criteria:

- **coverage**: every derived config covers 100% of its recorded usage
  (every observed syscall dispatches, every implied option is enabled);
- **bounded ratio**: each derived config's enabled-option count is at
  most :data:`MAX_OPTION_RATIO` times its curated counterpart's;
- **determinism**: the whole pipeline runs twice per app and the
  per-app and whole-report digests must be byte-identical; ``--jobs``
  fans apps across fork workers (submission-order merge, counter deltas
  folded back), so regressing any job count against the same pinned
  digests is the fan-out-determinism gate.

Counters are work deltas (resolver work during the derive loop), never
wall-clock, so the document is byte-stable across machines and job
counts: every shard is hermetic -- caches reset and the shared
fixpoints (lupine-base, microvm) re-warmed before its counters are
snapshotted -- so each app's delta is a constant and the loop total is
the same sum regardless of fork-pool task placement.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Tuple

from repro.observe import METRICS

#: File the benchmark JSON is written to, next to the run manifest.
BENCH_DERIVE_NAME = "BENCH_derive.json"

#: Acceptance ceiling: derived enabled-option count over curated.
MAX_OPTION_RATIO = 1.5

_WORK_COUNTERS = (
    "kconfig.resolutions",
    "kconfig.resolve.visited_options",
    "kconfig.expr.evals",
)


def _counter_snapshot() -> Dict[str, int]:
    return {name: METRICS.counter(name).value for name in _WORK_COUNTERS}


def _counter_deltas(before: Dict[str, int]) -> Dict[str, int]:
    return {
        name: METRICS.counter(name).value - before[name]
        for name in _WORK_COUNTERS
    }


def _derive_one(app_name: str, tree: Any) -> Dict[str, Any]:
    """One app through the loop, twice (the rerun determinism probe)."""
    from repro.apps.registry import get_app
    from repro.core.specialization import app_config
    from repro.core.tracing import usage_trace_for_app
    from repro.kconfig.derive import derivation_report

    app = get_app(app_name)
    trace = usage_trace_for_app(app)
    report = derivation_report(trace, tree)
    rerun = derivation_report(usage_trace_for_app(app), tree)
    curated_options = len(app_config(app, tree).enabled)
    return {
        "app": app_name,
        "usage_digest": report.usage_digest,
        "config_digest": report.config_digest,
        "rerun_usage_digest": rerun.usage_digest,
        "rerun_config_digest": rerun.config_digest,
        "extras": list(report.extras),
        "request_size": len(report.request),
        "option_count": report.option_count,
        "curated_option_count": curated_options,
        "option_ratio": round(report.option_count / curated_options, 6),
        "covers": report.covers,
        "recorded_calls": trace.call_count,
        "recorded_syscalls": len(trace.syscalls),
    }


def _derive_shard(app_name: str) -> Tuple[Dict[str, Any], Dict[str, int]]:
    """Worker entry point: one app's row plus its work-counter deltas.

    The shard is hermetic: caches are reset and the shared fixpoints
    (lupine-base, microvm) re-warmed before the counters are
    snapshotted, so every app's delta is the same constant no matter
    which process runs it or what ran before it -- totals are then
    invariant across ``--jobs`` and across fork-pool task placement.
    """
    from repro.core.buildcache import BUILD_CACHE
    from repro.kconfig.configs import lupine_base_config, microvm_config
    from repro.kconfig.database import build_linux_tree
    from repro.kconfig.rescache import RESOLUTION_CACHE

    RESOLUTION_CACHE.reset()
    BUILD_CACHE.reset()
    tree = build_linux_tree()
    lupine_base_config(tree)
    microvm_config(tree)
    before = _counter_snapshot()
    row = _derive_one(app_name, tree)
    return row, _counter_deltas(before)


def _execute(
    app_names: List[str], jobs: int
) -> Tuple[List[Dict[str, Any]], Dict[str, int]]:
    """Fan apps across fork workers; rows in submission order.

    Returns the rows plus the fold of the per-shard counter deltas --
    the benchmark's loop counters come from that fold (never from a
    parent-registry snapshot), so they are the same sum of per-app
    constants whether shards ran in-process or across a fork pool.
    """
    import multiprocessing

    jobs = max(1, int(jobs))
    fold = {name: 0 for name in _WORK_COUNTERS}
    if jobs == 1 or len(app_names) <= 1:
        outcomes = [_derive_shard(name) for name in app_names]
    else:
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=min(jobs, len(app_names)),
                                 mp_context=context) as pool:
            futures = [pool.submit(_derive_shard, name)
                       for name in app_names]
            outcomes = [future.result() for future in futures]
        # Worker processes died with their registries; fold the shard
        # work back into the parent so global metrics stay conserved.
        for _, deltas in outcomes:
            for name in sorted(deltas):
                METRICS.counter(name).inc(deltas[name])
    for _, deltas in outcomes:
        for name in deltas:
            fold[name] += deltas[name]
    return [row for row, _ in outcomes], fold


def _report_digest(rows: List[Dict[str, Any]], key: str) -> str:
    payload = json.dumps(
        [[row["app"], row[key], row["extras"]] for row in rows],
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


def run_bench(jobs: int = 1) -> Dict[str, Any]:
    """Run the derive loop for all curated apps; metrics-shaped result."""
    from repro.apps.registry import TOP20_APPS
    from repro.core.buildcache import BUILD_CACHE
    from repro.kconfig.configs import lupine_base_config, microvm_config
    from repro.kconfig.database import build_linux_tree
    from repro.kconfig.rescache import RESOLUTION_CACHE

    # Start cold, then pre-warm the shared fixpoints in the parent so
    # every worker (forked or in-process) inherits identical cache
    # state and each app's derivation costs the same work everywhere.
    RESOLUTION_CACHE.reset()
    BUILD_CACHE.reset()
    tree = build_linux_tree()
    prewarm_before = _counter_snapshot()
    lupine_base_config(tree)
    microvm_config(tree)
    prewarm = _counter_deltas(prewarm_before)

    app_names = [app.name for app in TOP20_APPS]
    rows, loop = _execute(app_names, jobs)

    counters = {
        f"{metric}.prewarm": value for metric, value in prewarm.items()
    }
    counters.update(
        {f"{metric}.derive_loop": value for metric, value in loop.items()}
    )
    digests: Dict[str, str] = {}
    for row in rows:
        digests[f"derive.usage_digest48.{row['app']}"] = (
            row["usage_digest"][:12]
        )
        digests[f"derive.config_digest48.{row['app']}"] = (
            row["config_digest"][:12]
        )
    digests["derive.report_digest48.all"] = (
        _report_digest(rows, "config_digest")[:12]
    )
    digests["derive.report_digest48.all.rerun"] = (
        _report_digest(
            [
                {**row, "config_digest": row["rerun_config_digest"]}
                for row in rows
            ],
            "config_digest",
        )[:12]
    )
    ratios = [row["option_ratio"] for row in rows]
    return {
        "counters": counters,
        "gauges": {
            "derive.bench_apps": float(len(rows)),
            "derive.covered_apps": float(
                sum(1 for row in rows if row["covers"])
            ),
            "derive.max_option_ratio": round(max(ratios), 6),
            "derive.extra_options_total": float(
                sum(len(row["extras"]) for row in rows)
            ),
            "derive.request_options_total": float(
                sum(row["request_size"] for row in rows)
            ),
            "derive.recorded_calls_total": float(
                sum(row["recorded_calls"] for row in rows)
            ),
        },
        "digests": digests,
        "histograms": {},
        "apps": rows,
    }


def check_result(result: Dict[str, Any]) -> List[str]:
    """Return acceptance-criterion violations ([] when the result passes)."""
    failures: List[str] = []
    rows = result.get("apps", [])
    if not rows:
        return ["no per-app derivation rows in result"]
    for row in rows:
        app = row["app"]
        if not row["covers"]:
            failures.append(
                f"{app}: derived config does not cover its recorded usage"
            )
        if row["option_ratio"] > MAX_OPTION_RATIO:
            failures.append(
                f"{app}: derived/curated option ratio "
                f"{row['option_ratio']:.3f} exceeds {MAX_OPTION_RATIO}"
            )
        if row["usage_digest"] != row["rerun_usage_digest"]:
            failures.append(f"{app}: usage recording is not deterministic")
        if row["config_digest"] != row["rerun_config_digest"]:
            failures.append(f"{app}: derived config is not deterministic")
    digests = result.get("digests", {})
    if digests.get("derive.report_digest48.all") != digests.get(
        "derive.report_digest48.all.rerun"
    ):
        failures.append("whole-report rerun digest mismatch")
    return failures


def write_result(result: Dict[str, Any], path: pathlib.Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def render_summary(result: Dict[str, Any]) -> str:
    """Human-readable per-app table for the CLI."""
    lines = [
        f"{'app':<14} {'extras':>6} {'request':>7} {'options':>7} "
        f"{'ratio':>6} {'covers':>6}  config digest"
    ]
    for row in result["apps"]:
        lines.append(
            f"{row['app']:<14} {len(row['extras']):>6} "
            f"{row['request_size']:>7} {row['option_count']:>7} "
            f"{row['option_ratio']:>6.3f} "
            f"{'yes' if row['covers'] else 'NO':>6}  "
            f"{row['config_digest'][:12]}"
        )
    gauges = result["gauges"]
    lines.append(
        f"apps: {gauges['derive.bench_apps']:g}, "
        f"covered: {gauges['derive.covered_apps']:g}, "
        f"max ratio: {gauges['derive.max_option_ratio']:g}"
    )
    return "\n".join(lines)
