"""The Lupine build pipeline (Figure 2) and the booted guest.

``LupineBuilder`` turns a container image + application manifest into a
Lupine unikernel: a specialized (optionally KML) kernel image plus an ext2
root filesystem containing the app, a KML-enabled musl libc and a generated
startup script.  ``LupineGuest`` is the running instance: it boots on a
standard monitor, execs the startup script, and -- because it is Linux --
*gracefully degrades* instead of crashing when the application steps outside
the unikernel envelope (fork, multiple processes; Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.apps.app import Application
from repro.boot.bootsim import BootReport, BootSimulator
from repro.boot.phases import RootfsKind
from repro.core.manifest import ApplicationManifest, generate_manifest
from repro.core.variants import Variant, VariantBuild, build_variant
from repro.kml.libc import MuslLibc
from repro.mm.footprint import FootprintModel, measure_min_memory_mb
from repro.rootfs.container import ContainerImage, FileEntry, container_for_app
from repro.rootfs.ext2 import Ext2Image, build_ext2
from repro.rootfs.init import INIT_SCRIPT_PATH, generate_init_script
from repro.sched.scheduler import Scheduler
from repro.sched.smp import SmpModel
from repro.sched.task import Task
from repro.syscall.dispatch import SyscallEngine
from repro.vmm.monitor import Monitor, firecracker


@dataclass(frozen=True)
class LupineUnikernel:
    """A built Lupine unikernel: kernel image + rootfs (Figure 2 output)."""

    app: Optional[Application]
    manifest: Optional[ApplicationManifest]
    build: VariantBuild
    rootfs: Ext2Image
    init_script: str
    libc: MuslLibc

    @property
    def variant(self) -> Variant:
        return self.build.variant

    @property
    def kernel_image_mb(self) -> float:
        return self.build.image.size_mb

    @property
    def rootfs_size_mb(self) -> float:
        return self.rootfs.size_kb / 1024.0

    def boot(self, monitor: Optional[Monitor] = None) -> "LupineGuest":
        """Boot on *monitor* (default Firecracker), returning the guest."""
        monitor = monitor or firecracker()
        monitor.check_linux_guest(self.build.image)
        simulator = BootSimulator(monitor_setup_ms=monitor.setup_ms)
        report = simulator.boot(
            self.build.image, rootfs=RootfsKind.EXT2,
            system=self.build.config.name,
        )
        return LupineGuest(unikernel=self, monitor=monitor, boot_report=report)

    def min_memory_mb(self) -> int:
        """Figure 8's metric for this unikernel."""
        app = self.app
        model = FootprintModel(
            image=self.build.image,
            app_resident_kb=float(app.resident_kb if app else 16),
            app_mapped_kb=float(app.binary_size_kb if app else 64),
        )
        return measure_min_memory_mb(model.try_boot)


@dataclass
class LupineGuest:
    """A booted Lupine guest with a live scheduler and syscall engine."""

    unikernel: LupineUnikernel
    monitor: Monitor
    boot_report: BootReport
    engine: SyscallEngine = field(init=False)
    scheduler: Scheduler = field(init=False)
    console: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.engine = self.unikernel.build.syscall_engine()
        smp_enabled = "SMP" in self.unikernel.build.config
        self.scheduler = Scheduler(
            cost_model=self.engine.cost_model,
            smp=SmpModel(smp_enabled=smp_enabled, cpus=1),
        )
        self._run_init()

    def _run_init(self) -> None:
        """Execute the generated startup script as pid 1."""
        if not self.unikernel.rootfs.exists(INIT_SCRIPT_PATH):
            raise RuntimeError("rootfs has no startup script")
        app = self.unikernel.app
        kernel_mode = self.unikernel.build.kml
        name = app.name if app else "init"
        resident = app.resident_kb if app else 16
        self.app_task = self.scheduler.spawn(
            name, working_set_kb=min(resident, 4096), kernel_mode=kernel_mode
        )
        self.engine.invoke("execve")
        self.console.append(f"lupine: starting {name}")
        if app and app.needs_procfs and "PROC_FS" in self.unikernel.build.config:
            self.engine.invoke("mount")
        self.console.append(f"{name}: ready")

    # -- unikernel-envelope checks / graceful degradation ------------------

    def syscall(self, name: str, work_ns: float = 0.0):
        """Issue a syscall from the app; ENOSYS surfaces as an exception."""
        return self.engine.invoke(name, work_ns=work_ns)

    def fork_app(self) -> Task:
        """fork() from the application.

        Where unikernels crash or continue in a corrupted state, Lupine
        simply runs the child (Section 5), provided the kernel was built
        with fork support (always true: fork is not config-gated).
        """
        self.engine.invoke("fork")
        return self.scheduler.fork(self.app_task)

    def spawn_control_processes(self, count: int) -> List[Task]:
        """Launch *count* sleeping 'control' processes (Figure 11 setup)."""
        control = []
        for index in range(count):
            task = self.scheduler.spawn(f"sleep-{index}", working_set_kb=4)
            self.scheduler.sleep(task)
            control.append(task)
        return control

    @property
    def ran_successfully(self) -> bool:
        """The paper's simple success criterion: the ready line appeared."""
        return any(line.endswith(": ready") for line in self.console)

    def dmesg(self) -> str:
        """The kernel console output of this guest's boot."""
        from repro.boot.console import dmesg as render_dmesg

        return render_dmesg(self.unikernel.build.image, self.boot_report)

    def exec_address_space(self, memory_mb: int = 128):
        """Materialize the app's address space: exec the entrypoint binary.

        Loads the real binary from this guest's rootfs through the ELF
        loader (segments, interpreter, demand paging) against a physical
        budget of *memory_mb*.  Returns the
        :class:`~repro.mm.elf.LoadedImage`.
        """
        from repro.mm.address_space import AddressSpace, PhysicalMemory
        from repro.mm.elf import load_elf

        app = self.unikernel.app
        if app is None:
            raise RuntimeError("guest has no application")
        physical = PhysicalMemory(total_bytes=memory_mb * 1024 * 1024)
        space = AddressSpace(
            asid=self.app_task.address_space_id, physical=physical
        )
        return load_elf(space, self.unikernel.rootfs, app.entrypoint[0])

    def tcp_stack(self, backlog: int = 128):
        """A TCP endpoint matching this guest's kernel configuration."""
        from repro.netstack.tcp import stack_for_config

        return stack_for_config(
            self.unikernel.build.config.enabled, backlog=backlog
        )

    def timer_wheel(self):
        """The kernel's timer wheel, at the configured tick frequency.

        The HZ choice group (``HZ_100``/``HZ_250``/``HZ_1000``) in the
        resolved configuration selects the tick length.
        """
        from repro.sched.timers import TimerWheel

        config = self.unikernel.build.config
        hz = 250
        for option_name, value in (("HZ_100", 100), ("HZ_250", 250),
                                   ("HZ_1000", 1000)):
            if option_name in config:
                hz = value
        return TimerWheel(hz=hz)

    def block_device(self, extra_mb: float = 16.0):
        """The virtio-blk device backing this guest's rootfs.

        Sized to the rootfs image plus writable slack; paired with a
        :class:`~repro.block.pagecache.PageCache` it gives the guest a
        storage path for durability-bound workloads.
        """
        from repro.block.device import VirtioBlockDevice

        return VirtioBlockDevice(
            capacity_mb=self.unikernel.rootfs_size_mb + extra_mb
        )


@dataclass
class LupineBuilder:
    """Builds Lupine unikernels from container images (Figure 2).

    ``slim=True`` additionally runs the DockerSlim-style minimization over
    the container before building the rootfs (paper footnote 3).
    """

    variant: Variant = Variant.LUPINE
    slim: bool = False

    def build_for_app(
        self,
        app: Application,
        container: Optional[ContainerImage] = None,
        manifest: Optional[ApplicationManifest] = None,
    ) -> LupineUnikernel:
        """The full pipeline for one application."""
        manifest = manifest or generate_manifest(app)
        libc = MuslLibc(kml_patched=self.variant.kml)
        container = container or container_for_app(app, libc.variant)
        if self.slim:
            from repro.rootfs.slim import slim_container

            container, _ = slim_container(container, manifest)
        build = build_variant(self.variant, manifest)
        init_script = generate_init_script(
            entrypoint=container.entrypoint or tuple(app.entrypoint),
            env=container.env,
            enabled_options=build.config.enabled,
            needs_network=app.needs_network,
            ulimit_nofile=4096 if app.needs_network else 0,
        )
        files = list(container.flatten().values())
        files.append(
            FileEntry(
                INIT_SCRIPT_PATH,
                size_kb=max(1.0, len(init_script) / 1024.0),
                executable=True,
            )
        )
        rootfs = build_ext2(files, label=f"lupine-{app.name}")
        return LupineUnikernel(
            app=app,
            manifest=manifest,
            build=build,
            rootfs=rootfs,
            init_script=init_script,
            libc=libc,
        )

    def build_bare(self) -> LupineUnikernel:
        """A bare hello-world-capable unikernel (for Figures 6/7)."""
        from repro.apps.registry import get_app

        return self.build_for_app(get_app("hello-world"))
