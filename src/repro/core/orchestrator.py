"""Kernel orchestration: managing specialized kernels for many apps.

The paper's conclusion and its MultiK citation sketch the deployment
question Lupine raises: run one specialized kernel per application, or one
``lupine-general`` kernel for everything?  Section 4 answers it empirically
(general costs ≤4% throughput, +2 ms boot, slightly larger image); this
module turns that decision into an operator-facing policy object with a
build cache, so a fleet of unikernels can be stood up the way the paper's
evaluation was.
"""

from __future__ import annotations

import enum
import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.apps.app import Application
from repro.core.lupine import LupineBuilder, LupineUnikernel
from repro.core.variants import Variant, variant_fingerprint


class KernelPolicy(enum.Enum):
    """Which kernel to give each application."""

    #: One specialized kernel per application (maximum specialization).
    PER_APP = "per-app"
    #: One lupine-general kernel shared by all (the paper's recommendation
    #: for general users; Section 4.1).
    GENERAL = "general"
    #: Specialized kernels for apps above a popularity threshold, the
    #: general kernel for the long tail.
    HYBRID = "hybrid"


@dataclass
class Fleet:
    """A set of built unikernels plus aggregate statistics."""

    guests: Dict[str, LupineUnikernel] = field(default_factory=dict)

    @staticmethod
    def _kernel_identity(unikernel: LupineUnikernel) -> str:
        # Content fingerprint when available (two apps resolving to the
        # identical config share one kernel); config name as a fallback for
        # builds assembled outside the caching path.
        return unikernel.build.fingerprint or unikernel.build.config.name

    @property
    def distinct_kernels(self) -> int:
        return len({
            self._kernel_identity(unikernel)
            for unikernel in self.guests.values()
        })

    @property
    def total_kernel_mb(self) -> float:
        seen = {}
        for unikernel in self.guests.values():
            seen[self._kernel_identity(unikernel)] = unikernel.kernel_image_mb
        return sum(seen.values())

    def boot_all(self) -> Dict[str, float]:
        """Boot every guest; returns app -> boot ms."""
        return {
            name: unikernel.boot().boot_report.total_ms
            for name, unikernel in self.guests.items()
        }

    #: Requests served per chunk when the global event loop interleaves
    #: guests (chunking is bit-exact; see LinuxServerStack.serve_chunk).
    SERVE_CHUNK = 8

    @classmethod
    def simulate(
        cls,
        count: int,
        policy: KernelPolicy = KernelPolicy.GENERAL,
        seed: int = 0,
        requests_per_guest: int = 32,
        kml: bool = True,
        global_loop: bool = False,
        cohort: bool = False,
        jobs: int = 1,
    ) -> "FleetSimulation":
        """Boot and drive *count* guests under *policy*; fully deterministic.

        Draws an application mix from the registry's top-20 (weighted by
        download popularity, seeded PRNG), runs every guest through the
        unified :class:`~repro.simcore.guest.Guest` lifecycle -- full
        Figure 2 image pipeline, boot, then *requests_per_guest* requests
        of the app's workload profile -- each on its own virtual clock.
        Kernels come from :meth:`KernelOrchestrator.unikernel_for`, so
        the per-app memo is live and ``build_count`` lands in the
        manifest.  The same *seed* always yields a byte-identical
        manifest.

        ``global_loop=True`` runs the fleet as **one event loop**: every
        guest registers with a :class:`~repro.simcore.eventcore.EventCore`
        and the core interleaves lifecycle stages across guests in
        virtual-time order, fast-forwarding idle guests in closed form.
        Per-guest outcomes depend only on each guest's own clock, so the
        manifest digest is byte-identical to the sequential path -- the
        sequential path *is* the differential oracle, asserted by tests
        and the ``bench-guests --global-loop`` gate.

        ``cohort=True`` runs the cohort-vectorized fold: guests with the
        same application (hence identical spec, kernel and request
        profile) simulate one *representative* whose per-guest costs are
        replayed across the cohort.  Bit-identical to the sequential
        oracle -- see :meth:`_simulate_cohort`.

        ``jobs > 1`` shards the fleet across worker processes
        (:mod:`repro.harness.shardpool`): contiguous index ranges,
        deterministically merged, the same manifest digest as ``jobs=1``
        for any job count.  ``cohort`` selects the fold each shard runs.
        """
        from repro.apps.registry import top20_in_popularity_order

        if count < 0:
            raise ValueError(f"fleet size cannot be negative (got {count})")
        jobs = max(1, int(jobs))
        if global_loop and (cohort or jobs > 1):
            raise ValueError(
                "global_loop is an execution strategy of its own; combine "
                "cohort/jobs with the sequential path instead"
            )
        orchestrator = KernelOrchestrator(policy=policy, kml=kml)
        if count == 0:
            # Empty-but-well-formed: the manifest (and its digest) is
            # defined for a zero-guest fleet, identically under either
            # execution strategy, instead of raising.
            return FleetSimulation(
                policy=policy, seed=seed, count=0, entries=[],
                build_count=orchestrator.build_count, eventcore_stats=None,
            )
        apps = top20_in_popularity_order()
        rng = random.Random(seed)
        drawn = rng.choices(
            apps, weights=[app.downloads_billions for app in apps], k=count
        )
        if jobs > 1:
            entries, build_count, shard_stats = cls._simulate_sharded(
                policy, kml, drawn, requests_per_guest, cohort, jobs
            )
            return FleetSimulation(
                policy=policy, seed=seed, count=count, entries=entries,
                build_count=build_count, shard_stats=shard_stats,
            )
        specs = [
            cls._guest_spec(orchestrator, index, app)
            for index, app in enumerate(drawn)
        ]
        cls._validate_specs(specs)
        core_stats = None
        if global_loop:
            entries, core_stats = cls._simulate_global(
                orchestrator, drawn, specs, requests_per_guest
            )
        elif cohort:
            entries = cls._simulate_cohort(
                orchestrator, drawn, specs, requests_per_guest
            )
        else:
            entries = cls._simulate_sequential(
                orchestrator, drawn, specs, requests_per_guest
            )
        return FleetSimulation(
            policy=policy, seed=seed, count=count, entries=entries,
            build_count=orchestrator.build_count,
            eventcore_stats=core_stats,
        )

    @staticmethod
    def _validate_specs(specs) -> None:
        """Reject duplicate guest names up front, identically on both paths.

        The sequential path used to run duplicate-named guests silently
        while the global path failed deep inside ``EventCore.spawn``;
        both now fail fast, before any build work, with the same error.
        """
        seen: Set[str] = set()
        for spec in specs:
            if spec.name in seen:
                raise ValueError(
                    f"duplicate guest name {spec.name!r} in fleet specs"
                )
            seen.add(spec.name)

    @classmethod
    def _guest_spec(cls, orchestrator: "KernelOrchestrator", index: int,
                    app: Application):
        from repro.simcore.guest import GuestSpec

        return GuestSpec(
            name=f"guest-{index:05d}",
            variant=orchestrator.variant_for(app),
            app=app.name,
            full_image=True,
        )

    @staticmethod
    def _entry_for(guest, app: Application, boot_ms: float, requests: int,
                   rps: Optional[float]) -> "GuestManifestEntry":
        return GuestManifestEntry(
            guest=guest.spec.name,
            app=app.name,
            kernel=guest.kernel.config.name,
            fingerprint=guest.kernel.fingerprint,
            boot_ms=boot_ms,
            uptime_ns=guest.uptime_ns,
            requests=requests,
            rps=rps,
        )

    @classmethod
    def _simulate_sequential(
        cls,
        orchestrator: "KernelOrchestrator",
        drawn: List[Application],
        specs,
        requests_per_guest: int,
    ) -> List["GuestManifestEntry"]:
        """The sequential differential oracle: one guest at a time."""
        from repro.simcore.guest import Guest

        entries: List[GuestManifestEntry] = []
        for (index, app), spec in zip(enumerate(drawn), specs):
            guest = Guest(
                spec, unikernel=orchestrator.unikernel_for(app)
            ).build()
            boot_ms = guest.boot().total_ms
            profile = _workload_profile(app.name)
            requests, rps = 0, None
            if profile is not None and guest.netpath is not None:
                requests = requests_per_guest
                rps = guest.serve(profile, requests)
            guest.shutdown()
            entries.append(
                cls._entry_for(guest, app, boot_ms, requests, rps)
            )
        return entries

    @classmethod
    def _simulate_cohort(
        cls,
        orchestrator: "KernelOrchestrator",
        drawn: List[Application],
        specs,
        requests_per_guest: int,
    ) -> List["GuestManifestEntry"]:
        """Cohort-vectorized fold: one representative per app cohort.

        Two fleet guests drawn for the same application are identical in
        every manifest field except their name: the spec (variant, app,
        full_image) is a pure function of app + policy, the unikernel
        comes from the orchestrator's per-app memo, and each guest runs
        boot and the ``invoke_batch`` serving fold on a fresh clock and
        a fresh engine (``call_count`` starts at 0), so boot_ms,
        uptime_ns, requests and rps replay bit-identically.  The fold
        therefore simulates the cohort's *first* guest and replays its
        entry -- name swapped -- for every later member, instead of
        re-simulating guest by guest.  Byte-identical to
        :meth:`_simulate_sequential` (the differential oracle; asserted
        by tests and the ``bench-guests`` cohort gate).

        Representative clocks come from a fold-local
        :class:`~repro.simcore.eventcore.EventCore` (``clock_for``), so
        every cohort timeline is registered with one event heap, the
        fleet-path clock rule the time lint enforces.
        """
        import dataclasses

        from repro.simcore.eventcore import EventCore
        from repro.simcore.guest import Guest

        core = EventCore()
        representatives: Dict[str, GuestManifestEntry] = {}
        entries: List[GuestManifestEntry] = []
        for (index, app), spec in zip(enumerate(drawn), specs):
            representative = representatives.get(app.name)
            if representative is None:
                guest = Guest(
                    spec,
                    clock=core.clock_for(spec.name),
                    unikernel=orchestrator.unikernel_for(app),
                ).build()
                boot_ms = guest.boot().total_ms
                profile = _workload_profile(app.name)
                requests, rps = 0, None
                if profile is not None and guest.netpath is not None:
                    requests = requests_per_guest
                    rps = guest.serve(profile, requests)
                guest.shutdown()
                representative = cls._entry_for(
                    guest, app, boot_ms, requests, rps
                )
                representatives[app.name] = representative
                entries.append(representative)
            else:
                entries.append(
                    dataclasses.replace(representative, guest=spec.name)
                )
        return entries

    @classmethod
    def _simulate_sharded(
        cls,
        policy: KernelPolicy,
        kml: bool,
        drawn: List[Application],
        requests_per_guest: int,
        cohort: bool,
        jobs: int,
    ):
        """Execute the drawn fleet as worker-process shards; merge them.

        Contiguous index ranges (:func:`~repro.harness.shardpool.shard_bounds`)
        run in worker processes; each worker rebuilds its orchestrator
        and names guests by global index, so concatenating shard entries
        in shard order reproduces the sequential entry list exactly.
        ``build_count`` is the size of the union of per-shard kernel
        fingerprints (the same distinct-config count a single memo would
        have seen), and worker counter deltas fold back into this
        process's registry so benchmarks measure sharded work.

        Returns ``(entries, build_count, FleetShardStats)``.
        """
        from repro.harness.shardpool import (
            FleetShardSpec,
            execute_fleet_shards,
            fold_counter_deltas,
            shard_bounds,
        )

        shard_specs = [
            FleetShardSpec(
                start=lo,
                app_names=tuple(app.name for app in drawn[lo:hi]),
                policy=policy.value,
                kml=kml,
                requests_per_guest=requests_per_guest,
                cohort=cohort,
            )
            for lo, hi in shard_bounds(len(drawn), jobs)
        ]
        results = execute_fleet_shards(shard_specs)
        entries: List[GuestManifestEntry] = []
        fingerprints: Set[str] = set()
        merged_deltas: Dict[str, int] = {}
        for result in results:
            entries.extend(result.entries)
            fingerprints.update(result.fingerprints)
            for name, delta in result.counter_deltas.items():
                merged_deltas[name] = merged_deltas.get(name, 0) + delta
        fold_counter_deltas(merged_deltas)
        stats = FleetShardStats(
            jobs=jobs,
            shard_sizes=tuple(len(spec.app_names) for spec in shard_specs),
            max_elapsed_us=max(
                (result.elapsed_us for result in results), default=0.0
            ),
            total_elapsed_us=sum(result.elapsed_us for result in results),
        )
        return entries, len(fingerprints), stats

    @classmethod
    def _simulate_global(
        cls,
        orchestrator: "KernelOrchestrator",
        drawn: List[Application],
        specs,
        requests_per_guest: int,
    ):
        """Run the fleet as one event loop on a global EventCore."""
        from repro.simcore.eventcore import EventCore, drain_deadlines
        from repro.simcore.guest import Guest

        core = EventCore()
        results: Dict[int, GuestManifestEntry] = {}

        def _program(index: int, app: Application, guest: "Guest"):
            guest.build()
            yield None  # BUILT; boots interleave from virtual zero
            boot_ms = guest.boot().total_ms
            yield None  # BOOTED; serving orders by boot-staggered clocks
            profile = _workload_profile(app.name)
            requests, rps = 0, None
            if profile is not None and guest.netpath is not None:
                requests = requests_per_guest
                rps = yield from guest.serve_chunks(
                    profile, requests, chunk_size=cls.SERVE_CHUNK
                )
            # Park on any armed deadline so the core fast-forwards this
            # guest in closed form, then retire (shutdown re-drains as a
            # no-op, keeping uptime identical to the sequential oracle).
            yield from drain_deadlines(guest.clock)
            guest.shutdown()
            results[index] = cls._entry_for(
                guest, app, boot_ms, requests, rps
            )

        for (index, app), spec in zip(enumerate(drawn), specs):
            guest = Guest(
                spec,
                clock=core.clock_for(spec.name),
                unikernel=orchestrator.unikernel_for(app),
            )
            core.spawn(spec.name, _program(index, app, guest))
        stats = core.run()
        entries = [results[index] for index in range(len(drawn))]
        return entries, stats

    # -- the closed-loop serve mode ---------------------------------------

    @classmethod
    def serve(
        cls,
        count: int,
        policy: KernelPolicy = KernelPolicy.GENERAL,
        seed: int = 0,
        requests_per_guest: int = 32,
        kml: bool = True,
        global_loop: bool = False,
    ) -> "FleetServeReport":
        """Closed-loop serving: fixed request counts, per-request latency.

        Where :meth:`simulate` reports one aggregate rps per guest,
        ``serve`` drives every guest through
        :meth:`~repro.simcore.guest.Guest.serve_chunks` one request at a
        time and records each request's latency (the guest-clock delta
        across the chunk).  The mix is drawn from the *curated serving
        profiles* only -- every guest serves.  Because chunked serving
        replays the identical float additions under any interleaving,
        the sequential path and ``global_loop=True`` produce
        bit-identical latency samples (the property the tests pin);
        the open-loop counterpart is :func:`repro.traffic.serve.run_serving`.
        """
        from repro.apps.registry import top20_in_popularity_order

        if count < 0:
            raise ValueError(f"fleet size cannot be negative (got {count})")
        orchestrator = KernelOrchestrator(policy=policy, kml=kml)
        report = FleetServeReport(
            policy=policy, seed=seed, count=count,
            requests_per_guest=requests_per_guest,
        )
        if count == 0:
            return report
        apps = [
            app for app in top20_in_popularity_order()
            if serving_profile(app.name) is not None
        ]
        rng = random.Random(seed)
        drawn = rng.choices(
            apps, weights=[app.downloads_billions for app in apps], k=count
        )
        specs = [
            cls._guest_spec(orchestrator, index, app)
            for index, app in enumerate(drawn)
        ]
        cls._validate_specs(specs)
        if global_loop:
            report.entries, report.eventcore_stats = cls._serve_global(
                orchestrator, drawn, specs, requests_per_guest
            )
        else:
            report.entries = cls._serve_sequential(
                orchestrator, drawn, specs, requests_per_guest
            )
        return report

    @classmethod
    def _serve_sequential(cls, orchestrator, drawn, specs,
                          requests_per_guest):
        from repro.simcore.guest import Guest

        entries = []
        for (index, app), spec in zip(enumerate(drawn), specs):
            guest = Guest(
                spec, unikernel=orchestrator.unikernel_for(app)
            ).build()
            boot_ms = guest.boot().total_ms
            samples: List[float] = []
            prev = guest.clock.now_ns
            for instant in guest.serve_chunks(
                serving_profile(app.name), requests_per_guest, chunk_size=1
            ):
                samples.append(instant - prev)
                prev = instant
            guest.shutdown()
            entries.append(GuestServeEntry(
                guest=spec.name, app=app.name, boot_ms=boot_ms,
                samples_ns=samples,
            ))
        return entries

    @classmethod
    def _serve_global(cls, orchestrator, drawn, specs, requests_per_guest):
        from repro.simcore.eventcore import EventCore, drain_deadlines
        from repro.simcore.guest import Guest

        core = EventCore()
        results: Dict[int, GuestServeEntry] = {}

        def _program(index: int, app: Application, guest: "Guest"):
            guest.build()
            yield None
            boot_ms = guest.boot().total_ms
            yield None
            samples: List[float] = []
            prev = guest.clock.now_ns
            chunks = guest.serve_chunks(
                serving_profile(app.name), requests_per_guest, chunk_size=1
            )
            while True:
                try:
                    instant = next(chunks)
                except StopIteration:
                    break
                samples.append(instant - prev)
                prev = instant
                yield None
            yield from drain_deadlines(guest.clock)
            guest.shutdown()
            results[index] = GuestServeEntry(
                guest=guest.spec.name, app=app.name, boot_ms=boot_ms,
                samples_ns=samples,
            )

        for (index, app), spec in zip(enumerate(drawn), specs):
            guest = Guest(
                spec,
                clock=core.clock_for(spec.name),
                unikernel=orchestrator.unikernel_for(app),
            )
            core.spawn(spec.name, _program(index, app, guest))
        stats = core.run()
        entries = [results[index] for index in range(len(drawn))]
        return entries, stats


#: Which serving profile each registry app exercises in a fleet run.
#: Apps outside this map (databases modelled elsewhere, language runtimes,
#: hello-world) boot but serve no requests.
_PROFILE_BY_APP = {
    "redis": ("repro.workloads.redis", "REDIS_GET"),
    "memcached": ("repro.workloads.memcached", "MEMCACHED_GET"),
    "nginx": ("repro.workloads.nginx", "NGINX_CONN"),
    "httpd": ("repro.workloads.nginx", "NGINX_CONN"),
    "node": ("repro.workloads.nginx", "NGINX_SESS"),
    "traefik": ("repro.workloads.nginx", "NGINX_CONN"),
    "haproxy": ("repro.workloads.nginx", "NGINX_CONN"),
    "wordpress": ("repro.workloads.nginx", "NGINX_SESS"),
    "php": ("repro.workloads.nginx", "NGINX_SESS"),
}


def _workload_profile(app_name: str):
    entry = _PROFILE_BY_APP.get(app_name)
    if entry is None:
        return None
    module_name, attribute = entry
    module = __import__(module_name, fromlist=[attribute])
    return getattr(module, attribute)


def serving_profile(app_name: str):
    """The workload :class:`RequestProfile` *app_name* serves, or None.

    The public surface of the curated profile map: the traffic layer
    (``repro.traffic``) builds its app universe and per-request costs
    from this, so routing and fleet simulation agree on what each app's
    requests cost.
    """
    return _workload_profile(app_name)


@dataclass(frozen=True)
class FleetShardStats:
    """How a sharded run executed (manifest-external, like EventCoreStats).

    ``max_elapsed_us`` is the slowest shard's elapsed time on the
    tracer's host clock; the parallel-execution model of a sharded run's
    cost is the parent's own elapsed plus this maximum (shards run
    concurrently), which is what ``bench-guests`` reports.
    """

    jobs: int
    shard_sizes: Tuple[int, ...]
    max_elapsed_us: float
    total_elapsed_us: float


@dataclass(frozen=True)
class GuestManifestEntry:
    """One fleet guest's lifecycle record."""

    guest: str
    app: str
    kernel: str
    fingerprint: str
    boot_ms: float
    uptime_ns: float
    requests: int
    rps: Optional[float]


@dataclass
class FleetSimulation:
    """The deterministic outcome of one :meth:`Fleet.simulate` run.

    The manifest is execution-strategy-independent: a global-loop run and
    a sequential run of the same (seed, policy, count) serialize to the
    same bytes.  ``eventcore_stats`` (populated only by global-loop runs)
    is therefore deliberately *outside* the manifest -- it describes how
    the fleet was executed, not what it did.
    """

    policy: KernelPolicy
    seed: int
    count: int
    entries: List[GuestManifestEntry] = field(default_factory=list)
    #: Distinct kernel configurations the orchestrator materialized
    #: (KernelOrchestrator.build_count; equals distinct_kernels when the
    #: whole fleet was built through the orchestrator's memo).
    build_count: int = 0
    #: EventCoreStats of the global loop (None for sequential runs).
    eventcore_stats: Optional[object] = None
    #: FleetShardStats of a ``jobs > 1`` run (None otherwise); outside
    #: the manifest -- it describes how the fleet was executed.
    shard_stats: Optional["FleetShardStats"] = None

    @property
    def distinct_kernels(self) -> int:
        return len({entry.fingerprint for entry in self.entries})

    @property
    def total_requests(self) -> int:
        return sum(entry.requests for entry in self.entries)

    @property
    def total_boot_ms(self) -> float:
        return sum(entry.boot_ms for entry in self.entries)

    def manifest(self) -> Dict[str, object]:
        """The canonical JSON-able manifest (digest input)."""
        return {
            "policy": self.policy.value,
            "seed": self.seed,
            "count": self.count,
            "distinct_kernels": self.distinct_kernels,
            "build_count": self.build_count,
            "guests": [
                {
                    "guest": entry.guest,
                    "app": entry.app,
                    "kernel": entry.kernel,
                    "fingerprint": entry.fingerprint,
                    "boot_ms": entry.boot_ms,
                    "uptime_ns": entry.uptime_ns,
                    "requests": entry.requests,
                    "rps": entry.rps,
                }
                for entry in self.entries
            ],
        }

    @property
    def manifest_digest(self) -> str:
        """SHA-256 over the canonical manifest encoding."""
        encoded = json.dumps(
            self.manifest(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class GuestServeEntry:
    """One closed-loop serving guest: boot cost plus latency samples."""

    guest: str
    app: str
    boot_ms: float
    #: Per-request latency in virtual ns (guest-clock delta per chunk of
    #: one); bit-identical between the sequential and global-loop paths.
    samples_ns: Tuple[float, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "samples_ns", tuple(self.samples_ns))


@dataclass
class FleetServeReport:
    """The deterministic outcome of one :meth:`Fleet.serve` run."""

    policy: KernelPolicy
    seed: int
    count: int
    requests_per_guest: int
    entries: List[GuestServeEntry] = field(default_factory=list)
    #: EventCoreStats of the global loop (None for sequential runs);
    #: outside the manifest, like FleetSimulation's.
    eventcore_stats: Optional[object] = None

    @property
    def all_samples_ns(self) -> List[float]:
        return [
            sample for entry in self.entries for sample in entry.samples_ns
        ]

    def manifest(self) -> Dict[str, object]:
        return {
            "policy": self.policy.value,
            "seed": self.seed,
            "count": self.count,
            "requests_per_guest": self.requests_per_guest,
            "guests": [
                {
                    "guest": entry.guest,
                    "app": entry.app,
                    "boot_ms": entry.boot_ms,
                    "samples_ns": list(entry.samples_ns),
                }
                for entry in self.entries
            ],
        }

    @property
    def manifest_digest(self) -> str:
        encoded = json.dumps(
            self.manifest(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


@dataclass
class KernelOrchestrator:
    """Builds and caches kernels for applications under a policy.

    Kernel images come from the process-wide content-addressed
    :data:`~repro.core.buildcache.BUILD_CACHE` (via ``build_variant``), so
    two apps that resolve to the identical specialized configuration share
    one kernel; the orchestrator keeps only a per-app unikernel memo (the
    rootfs really is per-app) and counts the *distinct kernel
    configurations* it has materialized in ``build_count``.
    """

    policy: KernelPolicy = KernelPolicy.GENERAL
    kml: bool = True
    hybrid_downloads_threshold: float = 1.0
    _unikernels: Dict[str, LupineUnikernel] = field(default_factory=dict)
    _kernel_fingerprints: Set[str] = field(default_factory=set)
    build_count: int = 0

    def variant_for(self, app: Application) -> Variant:
        """Which kernel variant *app* gets under this policy.

        The public policy surface: fleet code (``Fleet.simulate``) and
        callers assembling :class:`~repro.simcore.guest.GuestSpec`\\ s use
        this rather than reaching into policy internals.
        """
        if self.policy is KernelPolicy.PER_APP:
            specialized = True
        elif self.policy is KernelPolicy.GENERAL:
            specialized = False
        else:
            specialized = (
                app.downloads_billions >= self.hybrid_downloads_threshold
            )
        if specialized:
            return Variant.LUPINE if self.kml else Variant.LUPINE_NOKML
        return (Variant.LUPINE_GENERAL if self.kml
                else Variant.LUPINE_GENERAL_NOKML)

    #: Backward-compatible alias (pre-fleet callers used the private name).
    _variant_for = variant_for

    def _cache_key(self, app: Application) -> str:
        """The kernel cache key for *app*: its resolved config fingerprint."""
        return variant_fingerprint(self.variant_for(app), app)

    def unikernel_for(self, app: Application) -> LupineUnikernel:
        """Get (building if necessary) the unikernel for *app*."""
        if app.name in self._unikernels:
            return self._unikernels[app.name]
        fingerprint = self._cache_key(app)
        builder = LupineBuilder(variant=self.variant_for(app))
        unikernel = builder.build_for_app(app)
        self._unikernels[app.name] = unikernel
        if fingerprint not in self._kernel_fingerprints:
            self._kernel_fingerprints.add(fingerprint)
            self.build_count += 1
        return unikernel

    def deploy(self, apps: List[Application]) -> Fleet:
        """Build a fleet covering *apps*."""
        fleet = Fleet()
        for app in apps:
            fleet.guests[app.name] = self.unikernel_for(app)
        return fleet

    def coverage_gaps(self, apps: List[Application]) -> List[Tuple[str, str]]:
        """Apps whose requirements the chosen kernels would not satisfy.

        With PER_APP this is empty by construction; with GENERAL it is empty
        exactly when every app's options are within the 19-option union --
        the paper's open question ("it is an open question to provide a
        guarantee that lupine-general is sufficient for a given workload").
        """
        from repro.apps.registry import lupine_general_option_union

        gaps: List[Tuple[str, str]] = []
        if self.policy is KernelPolicy.PER_APP:
            return gaps
        union = lupine_general_option_union()
        for app in apps:
            if self.policy is KernelPolicy.HYBRID and (
                app.downloads_billions >= self.hybrid_downloads_threshold
            ):
                continue
            missing = app.required_options - union
            for option in sorted(missing):
                gaps.append((app.name, option))
        return gaps
