"""Kernel orchestration: managing specialized kernels for many apps.

The paper's conclusion and its MultiK citation sketch the deployment
question Lupine raises: run one specialized kernel per application, or one
``lupine-general`` kernel for everything?  Section 4 answers it empirically
(general costs ≤4% throughput, +2 ms boot, slightly larger image); this
module turns that decision into an operator-facing policy object with a
build cache, so a fleet of unikernels can be stood up the way the paper's
evaluation was.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.apps.app import Application
from repro.core.lupine import LupineBuilder, LupineUnikernel
from repro.core.variants import Variant, variant_fingerprint


class KernelPolicy(enum.Enum):
    """Which kernel to give each application."""

    #: One specialized kernel per application (maximum specialization).
    PER_APP = "per-app"
    #: One lupine-general kernel shared by all (the paper's recommendation
    #: for general users; Section 4.1).
    GENERAL = "general"
    #: Specialized kernels for apps above a popularity threshold, the
    #: general kernel for the long tail.
    HYBRID = "hybrid"


@dataclass
class Fleet:
    """A set of built unikernels plus aggregate statistics."""

    guests: Dict[str, LupineUnikernel] = field(default_factory=dict)

    @staticmethod
    def _kernel_identity(unikernel: LupineUnikernel) -> str:
        # Content fingerprint when available (two apps resolving to the
        # identical config share one kernel); config name as a fallback for
        # builds assembled outside the caching path.
        return unikernel.build.fingerprint or unikernel.build.config.name

    @property
    def distinct_kernels(self) -> int:
        return len({
            self._kernel_identity(unikernel)
            for unikernel in self.guests.values()
        })

    @property
    def total_kernel_mb(self) -> float:
        seen = {}
        for unikernel in self.guests.values():
            seen[self._kernel_identity(unikernel)] = unikernel.kernel_image_mb
        return sum(seen.values())

    def boot_all(self) -> Dict[str, float]:
        """Boot every guest; returns app -> boot ms."""
        return {
            name: unikernel.boot().boot_report.total_ms
            for name, unikernel in self.guests.items()
        }


@dataclass
class KernelOrchestrator:
    """Builds and caches kernels for applications under a policy.

    Kernel images come from the process-wide content-addressed
    :data:`~repro.core.buildcache.BUILD_CACHE` (via ``build_variant``), so
    two apps that resolve to the identical specialized configuration share
    one kernel; the orchestrator keeps only a per-app unikernel memo (the
    rootfs really is per-app) and counts the *distinct kernel
    configurations* it has materialized in ``build_count``.
    """

    policy: KernelPolicy = KernelPolicy.GENERAL
    kml: bool = True
    hybrid_downloads_threshold: float = 1.0
    _unikernels: Dict[str, LupineUnikernel] = field(default_factory=dict)
    _kernel_fingerprints: Set[str] = field(default_factory=set)
    build_count: int = 0

    def _variant_for(self, app: Application) -> Variant:
        if self.policy is KernelPolicy.PER_APP:
            specialized = True
        elif self.policy is KernelPolicy.GENERAL:
            specialized = False
        else:
            specialized = (
                app.downloads_billions >= self.hybrid_downloads_threshold
            )
        if specialized:
            return Variant.LUPINE if self.kml else Variant.LUPINE_NOKML
        return (Variant.LUPINE_GENERAL if self.kml
                else Variant.LUPINE_GENERAL_NOKML)

    def _cache_key(self, app: Application) -> str:
        """The kernel cache key for *app*: its resolved config fingerprint."""
        return variant_fingerprint(self._variant_for(app), app)

    def unikernel_for(self, app: Application) -> LupineUnikernel:
        """Get (building if necessary) the unikernel for *app*."""
        if app.name in self._unikernels:
            return self._unikernels[app.name]
        fingerprint = self._cache_key(app)
        builder = LupineBuilder(variant=self._variant_for(app))
        unikernel = builder.build_for_app(app)
        self._unikernels[app.name] = unikernel
        if fingerprint not in self._kernel_fingerprints:
            self._kernel_fingerprints.add(fingerprint)
            self.build_count += 1
        return unikernel

    def deploy(self, apps: List[Application]) -> Fleet:
        """Build a fleet covering *apps*."""
        fleet = Fleet()
        for app in apps:
            fleet.guests[app.name] = self.unikernel_for(app)
        return fleet

    def coverage_gaps(self, apps: List[Application]) -> List[Tuple[str, str]]:
        """Apps whose requirements the chosen kernels would not satisfy.

        With PER_APP this is empty by construction; with GENERAL it is empty
        exactly when every app's options are within the 19-option union --
        the paper's open question ("it is an open question to provide a
        guarantee that lupine-general is sufficient for a given workload").
        """
        from repro.apps.registry import lupine_general_option_union

        gaps: List[Tuple[str, str]] = []
        if self.policy is KernelPolicy.PER_APP:
            return gaps
        union = lupine_general_option_union()
        for app in apps:
            if self.policy is KernelPolicy.HYBRID and (
                app.downloads_billions >= self.hybrid_downloads_threshold
            ):
                continue
            missing = app.required_options - union
            for option in sorted(missing):
                gaps.append((app.name, option))
        return gaps
