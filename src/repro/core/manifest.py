"""Application manifests.

"At its simplest, an application manifest could be a developer-supplied
kernel configuration and startup script" (Section 3).  Ours is the richer
form the paper sketches: the syscalls the application issues plus the
runtime facilities it touches (socket families, mounts, kernel crypto),
from which the kernel configuration and the startup script are both derived.

The paper leaves manifest *generation* to future work and derives
configurations manually from error messages; :func:`generate_manifest`
implements the dynamic-analysis route (trace the app under a full kernel,
record syscalls and facilities), and :func:`derive_options` maps the result
to Kconfig options -- reproducing the manual derivation's outcome exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Tuple

from repro.apps.app import Application
from repro.apps.registry import OPTION_FACILITIES
from repro.core.optionset import implied_options
from repro.syscall.table import SYSCALLS


@dataclass(frozen=True)
class ApplicationManifest:
    """What an application needs from the kernel."""

    app_name: str
    syscalls: FrozenSet[str]
    facilities: FrozenSet[str] = frozenset()
    entrypoint: Tuple[str, ...] = ()
    env: Tuple[Tuple[str, str], ...] = ()
    needs_network: bool = False

    def __post_init__(self) -> None:
        unknown = {name for name in self.syscalls if name not in SYSCALLS}
        if unknown:
            raise ValueError(f"manifest lists unknown syscalls: {sorted(unknown)}")
        bad = {f for f in self.facilities if f not in OPTION_FACILITIES.values()}
        if bad:
            raise ValueError(f"manifest lists unknown facilities: {sorted(bad)}")


def generate_manifest(app: Application) -> ApplicationManifest:
    """Dynamic-analysis manifest generation.

    Models tracing the application under a fully-provisioned kernel (as
    tools like DockerSlim/Twistlock do): every syscall the app issues and
    every facility it touches lands in the manifest.
    """
    return ApplicationManifest(
        app_name=app.name,
        syscalls=app.syscalls,
        facilities=app.facilities,
        entrypoint=tuple(app.entrypoint),
        env=tuple(app.env),
        needs_network=app.needs_network,
    )


def derive_options(manifest: ApplicationManifest) -> FrozenSet[str]:
    """Kconfig options (atop lupine-base) a manifest implies.

    Delegates to the shared syscall/facility -> option mapping in
    :mod:`repro.core.optionset`, the same one trace-driven derivation
    uses.
    """
    return implied_options(manifest.syscalls, manifest.facilities)


def manifest_from_trace(
    app_name: str,
    traced_syscalls: Iterable[str],
    traced_facilities: Iterable[str] = (),
    entrypoint: Tuple[str, ...] = (),
) -> ApplicationManifest:
    """Build a manifest from a raw trace (deduplicates, validates)."""
    return ApplicationManifest(
        app_name=app_name,
        syscalls=frozenset(traced_syscalls),
        facilities=frozenset(traced_facilities),
        entrypoint=entrypoint,
        needs_network=any(
            f.startswith("socket:") for f in traced_facilities
        ),
    )
