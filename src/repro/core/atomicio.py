"""Atomic file writes: temp file in the same directory, then ``os.replace``.

Every durable artifact the harness produces (result-cache entries, the run
manifest, rendered outputs, ``trace.json``/``metrics.json``) goes through
:func:`atomic_write_text`: a reader can observe the old content or the new
content, never a truncated intermediate -- a crash mid-write leaves the
destination untouched and at worst a stray ``*.tmp`` sibling.  The
fail-open loaders (e.g. the result cache) remain the second line of
defense for files damaged by anything outside this process.
"""

from __future__ import annotations

import os
import pathlib
import tempfile
from typing import Union


def atomic_write_text(
    path: Union[str, pathlib.Path], text: str, encoding: str = "utf-8"
) -> pathlib.Path:
    """Write *text* to *path* atomically; returns *path*.

    The temp file lives in the destination directory so ``os.replace`` is
    a same-filesystem rename (atomic on POSIX and Windows).
    """
    path = pathlib.Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path
