"""The process-wide, content-addressed kernel build cache.

The paper's evaluation (and our 14+ experiment reproductions of it) builds
the same handful of kernel variants over and over: every figure driver used
to call :func:`~repro.core.variants.build_variant` from scratch, and the
orchestrator kept its own private per-app memo.  MultiK-style fleet
deployment argues the opposite design: one shared cache, keyed on *what the
kernel is* (the resolved configuration) rather than *who asked for it* (the
application name), so identical configurations are built exactly once per
process no matter how many experiments, CLI invocations or orchestrator
policies request them.

``KernelBuildCache`` is that cache.  Keys are content fingerprints -- a
stable hash of the requested option set plus the KML/patch state -- so two
applications that resolve to the identical specialized configuration share
one build, which is also what makes ``Fleet.distinct_kernels`` meaningful.
The cache is thread-safe: the experiment harness runs independent
experiments concurrently and they all hit this one instance.

Invariants:

- **Cache-key composition.** :func:`config_fingerprint` is deterministic
  in the *set* of requested option names (order/duplicates irrelevant)
  plus the KML flag, the applied patch list, and the caller salt --
  nothing else.  Anything that changes the produced image must be part of
  the key; anything that doesn't (the requesting app's name, call order)
  must not be.
- **Build-once accounting.** ``hits + misses`` counts every
  ``get_or_build`` call, and ``misses == builds stored``: when two threads
  race on a new key, the losing thread's duplicate build is discarded and
  recorded as a *hit*, keeping "builds performed" equal to distinct
  entries created.
- **Factory runs unlocked.** Builds are slow; concurrent misses on
  different keys must never serialize on the cache lock.
- **No poisoned entries.** A factory that raises stores nothing and
  counts nothing: the exception propagates before any entry or counter
  is touched, so the next ``get_or_build`` on the same key retries the
  build from scratch.  (The ``buildcache.factory`` fault site exercises
  exactly this path; see ``docs/RESILIENCE.md``.)

Cache effectiveness is published to the process metrics registry as
``buildcache.hits`` / ``buildcache.misses`` counters and the
``buildcache.entries`` gauge (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Tuple

from repro.faults import fault_site
from repro.observe import METRICS, span


def config_fingerprint(
    names: Iterable[str],
    kml: bool = False,
    patches: Tuple[str, ...] = (),
    salt: str = "",
) -> str:
    """Content fingerprint of a kernel configuration request.

    Deterministic in the *set* of requested options (order and duplicates
    are irrelevant, as they are to the resolver) plus everything else that
    changes the produced image: the KML flag, applied source patches, and
    an optional caller salt.
    """
    payload = "\n".join(sorted(set(names)))
    payload += f"\nkml={kml}\npatches={','.join(patches)}\nsalt={salt}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class BuildCacheStats:
    """A point-in-time snapshot of cache effectiveness counters."""

    hits: int
    misses: int
    entries: int

    @property
    def builds_performed(self) -> int:
        return self.misses

    @property
    def builds_reused(self) -> int:
        return self.hits


class KernelBuildCache:
    """Thread-safe content-addressed cache of built kernel artifacts."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[str, Any] = {}
        self._hits = 0
        self._misses = 0

    def get_or_build(self, key: str, factory: Callable[[], Any]) -> Any:
        """Return the cached artifact for *key*, building it on first use.

        The factory runs outside the lock (builds are slow; concurrent
        misses on *different* keys must not serialize), so two threads
        racing on the same new key may both build -- the first stored
        result wins and exactly one build is counted.
        """
        with self._lock:
            if key in self._entries:
                self._hits += 1
                METRICS.counter("buildcache.hits").inc()
                return self._entries[key]
        with span("buildcache.build", category="buildcache", key=key):
            with fault_site("buildcache.factory"):
                artifact = factory()
        with self._lock:
            if key in self._entries:
                # Lost the race: another thread stored first; count as a hit
                # so performed-build accounting matches stored entries.
                self._hits += 1
                METRICS.counter("buildcache.hits").inc()
                return self._entries[key]
            self._entries[key] = artifact
            self._misses += 1
            METRICS.counter("buildcache.misses").inc()
            METRICS.gauge("buildcache.entries").set(len(self._entries))
            return artifact

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> BuildCacheStats:
        with self._lock:
            return BuildCacheStats(
                hits=self._hits, misses=self._misses,
                entries=len(self._entries),
            )

    def reset(self) -> None:
        """Drop all entries and counters (test isolation)."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0


#: The one cache every build path in the process shares.
BUILD_CACHE = KernelBuildCache()


def build_cache() -> KernelBuildCache:
    """The process-wide kernel build cache."""
    return BUILD_CACHE
