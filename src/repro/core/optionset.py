"""Shared option-set accounting for curated and derived configurations.

Three parts of the tree historically carried their own notion of "the
option set" of an application or configuration: manifest-implied extras
(:func:`repro.core.manifest.derive_options`), minimal request sets
(:mod:`repro.kconfig.minimize`), and the attack-surface report
(:mod:`repro.security.attack_surface`).  This module is the single
mapping point for the first and the single surface-metric fold for the
last, so a trace-derived config reports exactly the same metrics as a
curated one.  (Minimal request sets stay in :mod:`repro.kconfig.minimize`
-- they are a property of a resolved config, not of a usage set -- but
derivation and minimization both consume the helpers here.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable

from repro.apps.registry import option_for_facility
from repro.kbuild.image import CORE_TEXT_KB
from repro.kconfig.resolver import ResolvedConfig
from repro.syscall.table import available_syscalls, option_for_syscall


def implied_options(
    syscalls: Iterable[str], facilities: Iterable[str] = ()
) -> FrozenSet[str]:
    """Kconfig options (atop lupine-base) a usage set implies.

    Syscalls map through the Table 1 gating (ungated syscalls imply
    nothing); facilities map through the socket-family/mount/crypto
    table.  This is the one syscall/facility -> option mapping: manifest
    derivation and trace-driven derivation both call it.
    """
    options = set()
    for name in syscalls:
        option = option_for_syscall(name)
        if option is not None:
            options.add(option)
    for facility in facilities:
        options.add(option_for_facility(facility))
    return frozenset(options)


@dataclass(frozen=True)
class OptionSurface:
    """Surface metrics of one resolved configuration."""

    option_count: int
    surface_kb: float
    reachable_syscalls: int


def option_surface(config: ResolvedConfig) -> OptionSurface:
    """Surface metrics shared by security reports and derive benchmarks.

    The size fold iterates the enabled frozenset sorted so the float sum
    is identical under any PYTHONHASHSEED.
    """
    tree = config.tree
    surface_kb = CORE_TEXT_KB + sum(
        tree[name].size_kb for name in sorted(config.enabled)
    )
    return OptionSurface(
        option_count=len(config.enabled),
        surface_kb=surface_kb,
        reachable_syscalls=len(available_syscalls(config.enabled)),
    )
