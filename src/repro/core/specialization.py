"""Kconfig specialization: per-application and general Lupine configs.

Reproduces Section 3.1/4.1: starting from ``lupine-base``, add back exactly
the options an application's manifest implies; ``lupine-general`` is the
union over the top-20 applications (19 options, Figure 5).

Two routes produce an app-specialized config:

- **curated** (:func:`app_config`): the manifest route, mirroring the
  paper's hand-derived Table 3 options;
- **derived** (:func:`derived_app_config`): the trace-driven route --
  record the app's usage under a recorder
  (:func:`repro.core.tracing.usage_trace_for_app`), then derive the
  config from the observation (:mod:`repro.kconfig.derive`).
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Union

from repro.apps.app import Application
from repro.apps.registry import TOP20_APPS, get_app, lupine_general_option_union
from repro.core.manifest import ApplicationManifest, derive_options, generate_manifest
from repro.core.tracing import usage_trace_for_app
from repro.kconfig.configs import lupine_base_config
from repro.kconfig.database import base_option_names, build_linux_tree
from repro.kconfig.derive import derive_config, usage_option_requirements
from repro.kconfig.model import KconfigTree
from repro.kconfig.resolver import ResolvedConfig, Resolver
from repro.syscall.usage import UsageTrace


def app_option_requirements(
    app_or_manifest: Union[Application, ApplicationManifest],
) -> FrozenSet[str]:
    """Options atop lupine-base for an app (Table 3's rightmost column)."""
    if isinstance(app_or_manifest, Application):
        manifest = generate_manifest(app_or_manifest)
    else:
        manifest = app_or_manifest
    return derive_options(manifest)


def app_config_names(
    app_or_manifest: Union[Application, ApplicationManifest],
) -> List[str]:
    """The full requested-option list for an app-specific kernel."""
    return base_option_names() + sorted(app_option_requirements(app_or_manifest))


def app_config(
    app_or_manifest: Union[Application, ApplicationManifest],
    tree: Optional[KconfigTree] = None,
) -> ResolvedConfig:
    """Resolve the application-specific Lupine configuration.

    Derived warm from the shared ``lupine-base`` fixpoint: the N-th app
    config re-resolves only the cone reachable from the app's extra
    options instead of sweeping the whole tree again.
    """
    if tree is None:
        tree = build_linux_tree()
    name = (
        app_or_manifest.name
        if isinstance(app_or_manifest, Application)
        else app_or_manifest.app_name
    )
    resolver = Resolver(tree)
    return resolver.resolve_names_from(
        lupine_base_config(tree),
        app_config_names(app_or_manifest),
        name=f"lupine-{name}",
    )


def lupine_general_names() -> List[str]:
    """lupine-base plus the 19-option union over the top-20 apps."""
    return base_option_names() + sorted(lupine_general_option_union())


def lupine_general_config(tree: Optional[KconfigTree] = None) -> ResolvedConfig:
    """The lupine-general configuration (runs all top-20 apps).

    Like :func:`app_config`, derived warm from ``lupine-base``.
    """
    if tree is None:
        tree = build_linux_tree()
    return Resolver(tree).resolve_names_from(
        lupine_base_config(tree), lupine_general_names(),
        name="lupine-general",
    )


def derived_option_requirements(
    app_or_trace: Union[Application, str, UsageTrace],
) -> FrozenSet[str]:
    """Options atop lupine-base observed usage implies (derived route).

    The trace-driven analogue of :func:`app_option_requirements`.  For
    every registry app the derived set is a superset of the curated one
    (the recorded run exercises every facility and syscall the manifest
    lists); serving apps can gain options curation missed -- e.g. php's
    request loop epolls, so its derived config enables ``EPOLL`` even
    though its curated manifest lists no options.
    """
    trace = _usage_trace(app_or_trace)
    return usage_option_requirements(trace)


def derived_app_config_names(
    target: Union[Application, ApplicationManifest, str, UsageTrace],
) -> List[str]:
    """The full requested-option list for a trace-derived kernel.

    Mirrors :func:`app_config_names` for the derived family; manifests
    map back to their registry application so the recorded run (not the
    curated syscall list) drives the request.
    """
    if isinstance(target, ApplicationManifest):
        target = target.app_name
    return base_option_names() + sorted(derived_option_requirements(target))


def derived_app_config(
    app_or_trace: Union[Application, str, UsageTrace],
    tree: Optional[KconfigTree] = None,
) -> ResolvedConfig:
    """Resolve the trace-derived Lupine configuration for an app.

    Like :func:`app_config`, resolved warm from the shared
    ``lupine-base`` fixpoint, but requested from observation instead of
    curation.  Accepts an :class:`~repro.syscall.usage.UsageTrace`
    directly (e.g. one merged off a ``fleet-serve`` run).
    """
    if tree is None:
        tree = build_linux_tree()
    trace = _usage_trace(app_or_trace)
    return derive_config(
        trace, tree, name=f"lupine-derived-{trace.owner or 'anon'}"
    )


def _usage_trace(app_or_trace: Union[Application, str, UsageTrace]) -> UsageTrace:
    if isinstance(app_or_trace, UsageTrace):
        return app_or_trace
    app = (
        get_app(app_or_trace)
        if isinstance(app_or_trace, str)
        else app_or_trace
    )
    return usage_trace_for_app(app)


def verify_general_covers_top20() -> bool:
    """lupine-general must satisfy every top-20 app's requirements."""
    union = lupine_general_option_union()
    return all(app.required_options <= union for app in TOP20_APPS)
