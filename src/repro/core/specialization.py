"""Kconfig specialization: per-application and general Lupine configs.

Reproduces Section 3.1/4.1: starting from ``lupine-base``, add back exactly
the options an application's manifest implies; ``lupine-general`` is the
union over the top-20 applications (19 options, Figure 5).
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Union

from repro.apps.app import Application
from repro.apps.registry import TOP20_APPS, lupine_general_option_union
from repro.core.manifest import ApplicationManifest, derive_options, generate_manifest
from repro.kconfig.configs import lupine_base_config
from repro.kconfig.database import base_option_names, build_linux_tree
from repro.kconfig.model import KconfigTree
from repro.kconfig.resolver import ResolvedConfig, Resolver


def app_option_requirements(
    app_or_manifest: Union[Application, ApplicationManifest],
) -> FrozenSet[str]:
    """Options atop lupine-base for an app (Table 3's rightmost column)."""
    if isinstance(app_or_manifest, Application):
        manifest = generate_manifest(app_or_manifest)
    else:
        manifest = app_or_manifest
    return derive_options(manifest)


def app_config_names(
    app_or_manifest: Union[Application, ApplicationManifest],
) -> List[str]:
    """The full requested-option list for an app-specific kernel."""
    return base_option_names() + sorted(app_option_requirements(app_or_manifest))


def app_config(
    app_or_manifest: Union[Application, ApplicationManifest],
    tree: Optional[KconfigTree] = None,
) -> ResolvedConfig:
    """Resolve the application-specific Lupine configuration.

    Derived warm from the shared ``lupine-base`` fixpoint: the N-th app
    config re-resolves only the cone reachable from the app's extra
    options instead of sweeping the whole tree again.
    """
    if tree is None:
        tree = build_linux_tree()
    name = (
        app_or_manifest.name
        if isinstance(app_or_manifest, Application)
        else app_or_manifest.app_name
    )
    resolver = Resolver(tree)
    return resolver.resolve_names_from(
        lupine_base_config(tree),
        app_config_names(app_or_manifest),
        name=f"lupine-{name}",
    )


def lupine_general_names() -> List[str]:
    """lupine-base plus the 19-option union over the top-20 apps."""
    return base_option_names() + sorted(lupine_general_option_union())


def lupine_general_config(tree: Optional[KconfigTree] = None) -> ResolvedConfig:
    """The lupine-general configuration (runs all top-20 apps).

    Like :func:`app_config`, derived warm from ``lupine-base``.
    """
    if tree is None:
        tree = build_linux_tree()
    return Resolver(tree).resolve_names_from(
        lupine_base_config(tree), lupine_general_names(),
        name="lupine-general",
    )


def verify_general_covers_top20() -> bool:
    """lupine-general must satisfy every top-20 app's requirements."""
    union = lupine_general_option_union()
    return all(app.required_options <= union for app in TOP20_APPS)
