"""Syscall tracing: the strace-style route to application manifests.

The paper derives per-app configurations manually from error messages and
points at dynamic analysis (DockerSlim, Twistlock) as the automated path.
This module implements that path inside the simulation: run the application
on a *fully provisioned* kernel (microVM's configuration, where every
syscall works), record every syscall it issues and every kernel facility it
touches, and hand the trace to :func:`repro.core.manifest.manifest_from_trace`.

The tracer drives a real :class:`~repro.syscall.dispatch.SyscallEngine`, so
the traced calls are checked against the syscall table -- tracing an app
whose model lists a nonexistent syscall fails loudly rather than producing
a bogus manifest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from repro.apps.app import Application
from repro.core.manifest import ApplicationManifest, manifest_from_trace
from repro.kconfig.configs import microvm_config
from repro.syscall.dispatch import SyscallEngine
from repro.syscall.usage import UsageTrace

#: The syscall order of a typical dynamically-linked ELF startup (execve
#: through libc init), used to give traces a realistic prefix.
_STARTUP_SEQUENCE: Tuple[str, ...] = (
    "execve", "brk", "mmap", "access", "openat", "fstat", "mmap", "close",
    "openat", "read", "fstat", "mmap", "mprotect", "mmap", "close",
    "arch_prctl", "mprotect", "munmap", "set_tid_address", "rt_sigaction",
    "rt_sigprocmask", "prlimit64", "getrandom", "brk",
)


@dataclass
class SyscallTrace:
    """A recorded run: ordered events plus touched facilities."""

    app_name: str
    events: List[str] = field(default_factory=list)
    facilities: List[str] = field(default_factory=list)

    @property
    def distinct_syscalls(self) -> FrozenSet[str]:
        return frozenset(self.events)

    @property
    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for name in self.events:
            counts[name] = counts.get(name, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.events)


class SyscallTracer:
    """Records syscalls flowing through an engine (ptrace-style)."""

    def __init__(self, engine: SyscallEngine, app_name: str):
        self._engine = engine
        self.trace = SyscallTrace(app_name=app_name)

    def syscall(self, name: str, work_ns: float = 0.0):
        result = self._engine.invoke(name, work_ns=work_ns)
        self.trace.events.append(name)
        return result

    def touch_facility(self, facility: str) -> None:
        if facility not in self.trace.facilities:
            self.trace.facilities.append(facility)


def _provisioned_engine() -> SyscallEngine:
    """An engine for the trace kernel: microVM config, everything works."""
    return SyscallEngine.for_config(microvm_config().enabled)


def _drive_app(tracer: SyscallTracer, app: Application) -> None:
    """The standard app run: startup prefix, facilities, runtime pass."""
    for name in _STARTUP_SEQUENCE:
        tracer.syscall(name)

    # Configuration file reads.
    for _ in range(2):
        tracer.syscall("openat")
        tracer.syscall("read")
        tracer.syscall("close")

    # Facility-driven startup behaviour.
    for facility in sorted(app.facilities):
        kind, _, detail = facility.partition(":")
        if kind == "socket":
            tracer.syscall("socket")
            tracer.syscall("bind")
            if detail != "packet":
                tracer.syscall("listen")
        elif kind == "mount":
            tracer.syscall("mount")
        elif kind == "crypto":
            tracer.syscall("socket")  # AF_ALG
        tracer.touch_facility(facility)

    if app.uses_fork_at_startup:
        tracer.syscall("fork")
        tracer.syscall("wait4")

    # One runtime pass over every distinct syscall the app issues.
    for name in sorted(app.syscalls):
        tracer.syscall(name)


def trace_app_run(app: Application) -> SyscallTrace:
    """Run *app*'s startup + a short workload burst under the tracer.

    The run consists of the ELF/libc startup prefix, the app's own startup
    behaviour (config files, socket setup, mounts -- driven by its declared
    facilities), then one pass over every distinct syscall the app uses at
    runtime, so rarely-exercised gated calls still land in the trace.
    """
    tracer = SyscallTracer(_provisioned_engine(), app.name)
    _drive_app(tracer, app)
    return tracer.trace


def usage_trace_for_app(app: Application) -> UsageTrace:
    """Record *app*'s usage set: the same run, with a recorder attached.

    This is the recording half of the Loupe loop.  Apps with a serving
    profile additionally serve a short request burst through
    ``invoke_batch``, so closed-form folds contribute to the recorded
    usage exactly as they do at fleet scale -- attribution without
    stepping.
    """
    engine = _provisioned_engine()
    usage = UsageTrace(owner=app.name)
    engine.usage = usage
    tracer = SyscallTracer(engine, app.name)
    _drive_app(tracer, app)
    for facility in tracer.trace.facilities:
        usage.record_facility(facility)

    from repro.core.orchestrator import serving_profile  # avoid cycle

    profile = serving_profile(app.name)
    if profile is not None:
        # Served requests arrive over TCP: serving is itself an observed
        # use of the inet stack, whether or not the curated manifest
        # lists it (php's does not -- measurement catches it).
        usage.record_facility("socket:inet")
        engine.invoke_batch(list(profile.syscalls), profile.app_ns, repeats=16)
    return usage


def manifest_from_app_trace(app: Application) -> ApplicationManifest:
    """The fully automated pipeline: trace -> manifest."""
    trace = trace_app_run(app)
    return manifest_from_trace(
        app_name=app.name,
        traced_syscalls=trace.distinct_syscalls,
        traced_facilities=trace.facilities,
        entrypoint=tuple(app.entrypoint),
    )
