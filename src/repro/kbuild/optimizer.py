"""Compiler optimization model: -O2 vs -Os and link-time optimization.

The paper's ``-tiny`` variants are "compiled to optimize for space with -Os
rather than for performance with -O2" (Section 4); the size/speed factors
here reproduce the ~6% image shrink and the up-to-10-point throughput cost
observed in Table 4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OptLevel(enum.Enum):
    """Compiler optimization level for the kernel build."""

    O2 = "-O2"
    OS = "-Os"

    @property
    def size_factor(self) -> float:
        """Multiplier on object size relative to -O2."""
        return 1.0 if self is OptLevel.O2 else 0.93

    @property
    def speed_factor(self) -> float:
        """Multiplier on in-kernel execution time relative to -O2."""
        return 1.0 if self is OptLevel.O2 else 1.10


@dataclass(frozen=True)
class Toolchain:
    """Build toolchain settings."""

    opt_level: OptLevel = OptLevel.O2
    lto: bool = False

    @property
    def size_factor(self) -> float:
        factor = self.opt_level.size_factor
        if self.lto:
            factor *= 0.96  # LTO strips unreferenced kernel-internal symbols
        return factor

    @property
    def speed_factor(self) -> float:
        factor = self.opt_level.speed_factor
        if self.lto:
            factor *= 0.99
        return factor
