"""Kernel build substrate: from resolved config to kernel image artifact.

Models what ``make bzImage`` does with a configuration: collect the object
contributions of every built-in option, apply the optimizer (-O2/-Os, LTO),
link, and compress.  The resulting :class:`~repro.kbuild.image.KernelImage`
carries the sizes the paper measures in Figure 6 and the metadata the boot
and memory simulators consume.
"""

from repro.kbuild.builder import BuildError, KernelBuilder
from repro.kbuild.image import KernelImage
from repro.kbuild.optimizer import OptLevel

__all__ = ["BuildError", "KernelBuilder", "KernelImage", "OptLevel"]
