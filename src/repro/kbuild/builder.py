"""The kernel build pipeline: config -> compile -> link -> compress.

Checks the same preconditions a real build would (an x86-64 target, a
console, a way to mount a root filesystem), sums per-option object
contributions under the chosen toolchain, and compresses with the
configured compressor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.kbuild.image import (
    COMPRESSION_RATIOS,
    CORE_TEXT_KB,
    DEFAULT_COMPRESSION,
    KernelImage,
)
from repro.faults import fault_site
from repro.kbuild.optimizer import OptLevel, Toolchain
from repro.kconfig.resolver import ResolvedConfig
from repro.observe import METRICS, span
from repro.observe.metrics import DEFAULT_KB_BUCKETS


class BuildError(RuntimeError):
    """Raised when a configuration cannot produce a bootable kernel."""


#: Options a bootable guest kernel must have; missing ones fail the build
#: with the (simulated) equivalent of a link error or an unbootable image.
_REQUIRED_OPTIONS: Tuple[Tuple[str, str], ...] = (
    ("X86_64", "target architecture not selected"),
    ("MMU", "cannot build an MMU-less x86-64 kernel"),
    ("PRINTK", "kernel cannot report boot progress"),
    ("BINFMT_ELF", "kernel cannot execute init"),
    ("VFS_CORE", "no virtual filesystem layer"),
    ("TTY", "no console layer"),
)


@dataclass
class KernelBuilder:
    """Builds :class:`KernelImage` artifacts from resolved configurations."""

    toolchain: Toolchain = Toolchain()

    def build(
        self,
        config: ResolvedConfig,
        name: Optional[str] = None,
        kml: bool = False,
        patches: Tuple[str, ...] = (),
    ) -> KernelImage:
        """Build *config* into a kernel image.

        ``kml=True`` requires the KML patch to have been applied to the tree
        (i.e. ``KERNEL_MODE_LINUX`` resolvable and enabled in *config*).
        """
        with span("kbuild.build", category="kbuild",
                  config=name or config.name or "kernel",
                  options=len(config.enabled), kml=kml):
            # Fault site: an injected transient failure models a flaky
            # toolchain (OOM-killed compiler, racy dependency) that a
            # retry legitimately cures.
            with fault_site("kbuild.build"):
                image = self._build(config, name=name, kml=kml,
                                    patches=patches)
        METRICS.counter("kbuild.builds").inc()
        METRICS.histogram(
            "kbuild.image.compressed_kb", DEFAULT_KB_BUCKETS
        ).observe(image.compressed_kb)
        return image

    def _build(
        self,
        config: ResolvedConfig,
        name: Optional[str] = None,
        kml: bool = False,
        patches: Tuple[str, ...] = (),
    ) -> KernelImage:
        self._check_buildable(config)
        if kml:
            if "kml" not in patches:
                raise BuildError(
                    "KML requested but the KML patch is not applied"
                )
            if "KERNEL_MODE_LINUX" not in config:
                raise BuildError(
                    "KML requested but CONFIG_KERNEL_MODE_LINUX is not enabled"
                )
            if "PARAVIRT" in config:
                # The paper: CONFIG_PARAVIRT "unfortunately conflicts with
                # KML" -- the resolver enforces this, so reaching here means
                # the config was assembled by hand incorrectly.
                raise BuildError("CONFIG_PARAVIRT conflicts with KML")

        toolchain = self.toolchain
        if "CC_OPTIMIZE_FOR_SIZE" in config:
            toolchain = Toolchain(opt_level=OptLevel.OS, lto=toolchain.lto)

        if config.modules and "MODULES" not in config:
            raise BuildError(
                "configuration builds modules but CONFIG_MODULES is not set"
            )
        # Only built-in (=y) options are linked into the image; =m options
        # are compiled into loadable modules shipped alongside it.  Both
        # folds run in sorted order: builtin/modules are frozensets, and
        # image sizes flow into boot times and manifest digests, which
        # must not depend on PYTHONHASHSEED.
        option_kb = sum(
            config.tree[option_name].size_kb
            for option_name in sorted(config.builtin)
        )
        module_kb = sum(
            config.tree[option_name].size_kb
            for option_name in sorted(config.modules)
        )
        uncompressed = (CORE_TEXT_KB + option_kb) * toolchain.size_factor
        compressed = uncompressed * self._compression_ratio(config)

        return KernelImage(
            name=name or config.name or "kernel",
            config=config,
            toolchain=toolchain,
            uncompressed_kb=uncompressed,
            compressed_kb=compressed,
            modules_kb=module_kb * toolchain.size_factor,
            kml_enabled=kml,
            patches=tuple(patches),
        )

    @staticmethod
    def _check_buildable(config: ResolvedConfig) -> None:
        missing = [
            f"CONFIG_{option_name}: {reason}"
            for option_name, reason in _REQUIRED_OPTIONS
            if option_name not in config
        ]
        if missing:
            raise BuildError("unbootable configuration: " + "; ".join(missing))

    @staticmethod
    def _compression_ratio(config: ResolvedConfig) -> float:
        for option_name, ratio in COMPRESSION_RATIOS.items():
            if option_name in config:
                return ratio
        return DEFAULT_COMPRESSION
