"""Kernel image artifact.

A :class:`KernelImage` is the output of :class:`~repro.kbuild.builder.
KernelBuilder`: the compressed bzImage-equivalent whose size Figure 6
compares, plus the metadata downstream simulators need (uncompressed size
for decompression time, resident estimate for the memory footprint, the
configuration itself for boot/runtime behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from repro.kbuild.optimizer import Toolchain
from repro.kconfig.resolver import ResolvedConfig

#: Unconditional kernel text+data not attributable to any option (KiB).
CORE_TEXT_KB = 3400.0

#: Fraction of kernel code resident after boot (init sections freed, cold
#: text never faulted in by the VMM's demand paging).
RESIDENT_CODE_FRACTION = 0.12

#: Core resident footprint common to every Linux kernel (KiB).
CORE_RESIDENT_KB = 6144.0

#: Compression ratios by kernel compressor option.
COMPRESSION_RATIOS = {
    "KERNEL_GZIP": 0.37,
    "KERNEL_XZ": 0.30,
    "KERNEL_BZIP2": 0.34,
}

DEFAULT_COMPRESSION = 0.37


@dataclass(frozen=True)
class KernelImage:
    """A built kernel image."""

    name: str
    config: ResolvedConfig
    toolchain: Toolchain
    uncompressed_kb: float
    compressed_kb: float
    modules_kb: float = 0.0
    kml_enabled: bool = False
    patches: Tuple[str, ...] = ()

    @property
    def size_mb(self) -> float:
        """Compressed image size in MiB -- the Figure 6 metric."""
        return self.compressed_kb / 1024.0

    @property
    def uncompressed_mb(self) -> float:
        return self.uncompressed_kb / 1024.0

    @property
    def resident_kernel_kb(self) -> float:
        """Post-boot resident kernel code+rodata estimate (KiB)."""
        option_kb = max(0.0, self.uncompressed_kb - CORE_TEXT_KB)
        return CORE_RESIDENT_KB + RESIDENT_CODE_FRACTION * option_kb

    @property
    def enabled_options(self) -> FrozenSet[str]:
        return self.config.enabled

    def has_option(self, name: str) -> bool:
        return name in self.config

    def __str__(self) -> str:
        kml = "+kml" if self.kml_enabled else ""
        return f"<KernelImage {self.name}{kml} {self.size_mb:.2f} MB>"
