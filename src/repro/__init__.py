"""Reproduction of *A Linux in Unikernel Clothing* (Lupine Linux, EuroSys 2020).

This package reimplements, as deterministic Python simulations, every system
the paper builds or depends on:

- ``repro.kconfig``   -- the Linux Kconfig configuration system and a model of
  the Linux 4.0 option database.
- ``repro.kbuild``    -- the kernel build pipeline (per-option object sizes,
  -O2/-Os, link, compression) producing kernel image artifacts.
- ``repro.syscall``   -- the system-call subsystem: syscall table with config
  gating, CPU privilege-transition cost model, KPTI, KML entry, lmbench.
- ``repro.sched``     -- processes, threads, fork, context switches, SMP.
- ``repro.mm``        -- address spaces, demand paging, memory footprint.
- ``repro.boot``      -- phase-based kernel boot simulation.
- ``repro.vmm``       -- virtual machine monitors (Firecracker, QEMU,
  solo5-hvt, uhyve).
- ``repro.kml``       -- the Kernel Mode Linux patch and patched musl libc.
- ``repro.rootfs``    -- container images, ext2 root filesystems, init scripts.
- ``repro.unikernels``-- comparator unikernels: OSv, HermiTux, Rumprun.
- ``repro.apps``      -- the top-20 Docker Hub application models (Table 3).
- ``repro.workloads`` -- benchmark clients (redis-benchmark, ab, perf
  messaging, SMP stress suites).
- ``repro.core``      -- the paper's contribution: Lupine specialization,
  variants, and the unikernel build pipeline.

See DESIGN.md for the full inventory and the per-experiment index, and
EXPERIMENTS.md for paper-vs-measured results.
"""

from repro._version import __version__

__all__ = ["__version__"]
