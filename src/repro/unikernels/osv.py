"""OSv: a POSIX-like unikernel with Linux binary compatibility.

Behavioural model sources (paper Sections 4.3-4.6):

- ``getppid`` is "hardcoded to always return 0 without any indirection":
  near-zero null-call latency;
- read of /dev/zero is unsupported (expensive error path) and write to
  /dev/null is almost as expensive as microVM (Figure 9);
- boot time with its standard zfs r/w filesystem is ~10x worse than with a
  read-only filesystem (Figure 7's osv-zfs vs osv-rofs);
- it "drops connections" under redis load and its allocator inflates the
  redis write path and memory footprint (Table 4: 0.87/0.53; Figure 8);
- nginx and hello share a footprint because OSv also loads applications
  dynamically (footnote 10).
"""

from __future__ import annotations

from repro.boot.phases import BootPhase
from repro.unikernels.base import Unikernel, UnikernelWorkloadQuirk
from repro.vmm.monitor import firecracker


def OSv(filesystem: str = "rofs") -> Unikernel:
    """Build the OSv comparator model (``filesystem``: 'rofs' or 'zfs')."""
    if filesystem not in ("rofs", "zfs"):
        raise ValueError(f"OSv filesystem must be 'rofs' or 'zfs', not "
                         f"{filesystem!r}")
    mount_ms = 0.9 if filesystem == "rofs" else 41.0
    return Unikernel(
        name=f"osv-{filesystem}",
        monitor=firecracker(),
        curated_apps=frozenset({"hello-world", "redis", "nginx"}),
        statically_linked=False,
        image_base_mb=6.7,
        app_image_extra_mb={"hello-world": 0.0, "redis": 0.5, "nginx": 0.4},
        boot_phases_ms={
            BootPhase.KERNEL_LOAD: 0.8,
            BootPhase.EARLY_SETUP: 1.2,
            BootPhase.INITCALLS: 1.6,
            BootPhase.ROOTFS_MOUNT: mount_ms,
            BootPhase.INIT_EXEC: 0.9,
        },
        footprint_mb={"hello-world": 17.0, "nginx": 17.0, "redis": 39.0},
        syscall_entry_ns=25.0,
        lmbench_handler_ns={"null": 3.0, "read": 190.0, "write": 170.0},
        packet_ns=1830.0,
        app_work_factor=1.0,
        workload_quirks={
            "redis-set": UnikernelWorkloadQuirk(
                extra_ns=5295.0,
                note="allocator pressure on the write path; benchmark "
                     "observes dropped connections and retries",
            ),
            # OSv drops connections under the ab workloads entirely; the
            # benchmark harness reports these as N/A like the paper does.
            "nginx-conn": UnikernelWorkloadQuirk(
                extra_ns=float("inf"), note="drops connections under ab"
            ),
            "nginx-sess": UnikernelWorkloadQuirk(
                extra_ns=float("inf"), note="drops connections under ab"
            ),
        },
        fork_behaviour="stubbed: child continues as if parent (unexpected "
                       "state)",
    )
