"""Common unikernel machinery.

A :class:`Unikernel` exposes the same measurement surface as a Lupine/
microVM build -- image size, boot, footprint, lmbench, request costs -- but
with the POSIX-like unikernel restrictions the paper studies:

- only curated applications run (Section 4: "we were severely limited in
  the choice of applications by what the various unikernels could run");
- ``fork`` crashes or corrupts state instead of working (Section 5);
- a single virtual CPU, a single address space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Mapping, Optional

from repro.apps.app import Application
from repro.boot.bootsim import BootReport
from repro.boot.phases import BootPhase
from repro.vmm.monitor import Monitor
from repro.workloads.server import RequestProfile


class UnikernelError(RuntimeError):
    """Base class for unikernel failures."""


class AppNotSupported(UnikernelError):
    """The application is not on the unikernel's curated list."""


class UnikernelCrash(UnikernelError):
    """The guest crashed (e.g. fork on a stubbed-out implementation)."""


@dataclass(frozen=True)
class UnikernelWorkloadQuirk:
    """A documented per-workload behaviour (penalty or discount)."""

    extra_ns: float = 0.0
    handshake_factor: float = 1.0
    note: str = ""


@dataclass
class Unikernel:
    """One comparator unikernel."""

    name: str
    monitor: Monitor
    curated_apps: FrozenSet[str]
    statically_linked: bool
    image_base_mb: float
    app_image_extra_mb: Mapping[str, float]
    boot_phases_ms: Mapping[BootPhase, float]
    footprint_mb: Mapping[str, float]
    syscall_entry_ns: float
    lmbench_handler_ns: Mapping[str, float]
    packet_ns: float
    app_work_factor: float = 1.0
    supports_fork: bool = False
    workload_quirks: Mapping[str, UnikernelWorkloadQuirk] = field(
        default_factory=dict
    )
    fork_behaviour: str = "crash"

    # -- application compatibility ----------------------------------------

    def check_app(self, app: Application) -> None:
        """Raise unless *app* is on the curated list."""
        if app.name not in self.curated_apps:
            raise AppNotSupported(
                f"{self.name} cannot run {app.name}: not on the curated "
                f"application list {sorted(self.curated_apps)}"
            )

    def can_run(self, app: Application) -> bool:
        return app.name in self.curated_apps

    def run_app(self, app: Application) -> "UnikernelInstance":
        self.check_app(app)
        if app.uses_fork_at_startup:
            raise UnikernelCrash(
                f"{self.name}: {app.name} forks at startup; "
                f"fork behaviour is '{self.fork_behaviour}'"
            )
        return UnikernelInstance(unikernel=self, app=app)

    # -- Figure 6: image size ------------------------------------------------

    def image_size_mb(self, app: Optional[Application] = None) -> float:
        extra = 0.0
        if app is not None:
            extra = self.app_image_extra_mb.get(app.name, 0.6)
            if self.statically_linked:
                # Rump-style unikernels link the app and its libraries into
                # the kernel image itself.
                extra += app.binary_size_kb / 1024.0
        return self.image_base_mb + extra

    # -- Figure 7: boot -------------------------------------------------------

    def boot_report(self) -> BootReport:
        report = BootReport(system=self.name)
        report.phases_ms.update(self.boot_phases_ms)
        report.phases_ms[BootPhase.MONITOR_SETUP] = self.monitor.setup_ms
        return report

    # -- Figure 8: memory footprint ---------------------------------------------

    def min_memory_mb(self, app: Application) -> int:
        self.check_app(app)
        try:
            return int(round(self.footprint_mb[app.name]))
        except KeyError:
            raise AppNotSupported(
                f"{self.name}: no footprint model for {app.name}"
            ) from None

    # -- Figure 9: lmbench -------------------------------------------------------

    def lmbench_us(self, test: str) -> float:
        """null/read/write latency in microseconds (total, incl. entry)."""
        try:
            total_ns = self.lmbench_handler_ns[test]
        except KeyError:
            raise UnikernelError(
                f"{self.name}: lmbench {test!r} not supported"
            ) from None
        return total_ns / 1000.0

    # -- Table 4: application requests ---------------------------------------------

    def request_ns(self, profile: RequestProfile) -> float:
        """Cost to serve one request of *profile* on this unikernel."""
        quirk = self.workload_quirks.get(profile.name,
                                         UnikernelWorkloadQuirk())
        syscall_ns = len(profile.syscalls) * self.syscall_entry_ns
        copy_ns = (
            (profile.packets_in + profile.packets_out)
            * profile.payload_bytes / 12.0
        )
        data_ns = (profile.packets_in + profile.packets_out) * self.packet_ns
        handshake_ns = (
            profile.handshake_packets * self.packet_ns * quirk.handshake_factor
        )
        return (
            profile.app_ns * self.app_work_factor
            + syscall_ns
            + copy_ns
            + data_ns
            + handshake_ns
            + quirk.extra_ns
        )

    def requests_per_second(self, profile: RequestProfile) -> float:
        return 1e9 / self.request_ns(profile)


@dataclass
class UnikernelInstance:
    """A 'running' unikernel guest."""

    unikernel: Unikernel
    app: Application

    def fork(self):
        """Unikernels crash (or silently corrupt state) on fork."""
        if self.unikernel.supports_fork:
            raise UnikernelError("no modelled unikernel supports fork")
        raise UnikernelCrash(
            f"{self.unikernel.name}: fork() hit a stubbed-out implementation "
            f"({self.unikernel.fork_behaviour})"
        )

    def syscall(self, name: str) -> float:
        """Issue a syscall; unknown ones crash rather than return ENOSYS."""
        handler = self.unikernel.lmbench_handler_ns.get(name)
        if handler is None:
            if name in ("getppid", "read", "write"):
                handler = 5.0
            else:
                raise UnikernelCrash(
                    f"{self.unikernel.name}: unimplemented syscall {name}"
                )
        return (self.unikernel.syscall_entry_ns + handler) / 1000.0
