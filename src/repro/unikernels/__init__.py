"""Comparator unikernels: OSv, HermiTux, Rumprun.

The paper uses these as black-box comparison targets; we model their
*documented and observed* behaviours: curated application lists (most apps
simply cannot run), crashes on fork, implementation quirks (OSv's hardcoded
``getppid``, its zfs boot cost and allocator behaviour; Rumprun's static
linking and NetBSD stack characteristics; HermiTux's uhyve monitor).
"""

from repro.unikernels.base import (
    AppNotSupported,
    Unikernel,
    UnikernelCrash,
    UnikernelError,
)
from repro.unikernels.hermitux import HermiTux
from repro.unikernels.osv import OSv
from repro.unikernels.rump import Rumprun

__all__ = [
    "AppNotSupported",
    "HermiTux",
    "OSv",
    "Rumprun",
    "Unikernel",
    "UnikernelCrash",
    "UnikernelError",
]
