"""HermiTux: a binary-compatible unikernel on the uhyve monitor.

Behavioural model sources (paper Section 4):

- runs Linux binaries via syscall rewriting/fast handling -- very low
  syscall latency (Figure 9), but
- its network path through uhyve is expensive, putting redis throughput at
  ~0.66x microVM (Table 4);
- nginx "has not been curated for HermiTux" -- it cannot run it at all;
- small kernel image and small hello footprint, large redis footprint
  (no lazy loading; eager allocation).
"""

from __future__ import annotations

from repro.boot.phases import BootPhase
from repro.unikernels.base import Unikernel, UnikernelWorkloadQuirk
from repro.vmm.monitor import uhyve


def HermiTux() -> Unikernel:
    """Build the HermiTux comparator model."""
    return Unikernel(
        name="hermitux",
        monitor=uhyve(),
        curated_apps=frozenset({"hello-world", "redis"}),
        statically_linked=False,
        image_base_mb=1.9,
        app_image_extra_mb={"hello-world": 0.0, "redis": 0.4},
        boot_phases_ms={
            BootPhase.KERNEL_LOAD: 2.0,
            BootPhase.EARLY_SETUP: 6.5,
            BootPhase.INITCALLS: 14.0,
            BootPhase.ROOTFS_MOUNT: 1.5,
            BootPhase.INIT_EXEC: 2.0,
        },
        footprint_mb={"hello-world": 9.0, "redis": 36.0},
        syscall_entry_ns=11.0,
        lmbench_handler_ns={"null": 11.0, "read": 13.0, "write": 12.0},
        packet_ns=2684.0,
        app_work_factor=1.2,
        workload_quirks={
            "redis-get": UnikernelWorkloadQuirk(
                note="uhyve net path + single-threaded event handling"
            ),
            "redis-set": UnikernelWorkloadQuirk(
                note="uhyve net path + single-threaded event handling"
            ),
        },
        fork_behaviour="crash (fork stub aborts the guest)",
    )
