"""Rumprun: a NetBSD-based unikernel on the solo5-hvt monitor.

Behavioural model sources (paper Sections 2, 4):

- applications are statically linked *into* the unikernel image (modified
  build required) -- image size includes the application;
- NetBSD's mature TCP/IP stack performs well per-request (redis ~0.99x
  microVM) and its lightweight handshake path makes nginx-conn *faster*
  than microVM (1.25x), but
- sustained keep-alive throughput collapses (nginx-sess 0.53x), and
- it cannot fork.
"""

from __future__ import annotations

from repro.boot.phases import BootPhase
from repro.unikernels.base import Unikernel, UnikernelWorkloadQuirk
from repro.vmm.monitor import solo5_hvt


def Rumprun() -> Unikernel:
    """Build the Rumprun comparator model."""
    return Unikernel(
        name="rump",
        monitor=solo5_hvt(),
        curated_apps=frozenset({"hello-world", "redis", "nginx"}),
        statically_linked=True,
        image_base_mb=9.1,
        app_image_extra_mb={"hello-world": 0.0, "redis": 0.3, "nginx": 0.3},
        boot_phases_ms={
            BootPhase.KERNEL_LOAD: 1.4,
            BootPhase.EARLY_SETUP: 2.6,
            BootPhase.INITCALLS: 7.2,
            BootPhase.ROOTFS_MOUNT: 1.1,
            BootPhase.INIT_EXEC: 0.9,
        },
        footprint_mb={"hello-world": 12.0, "nginx": 20.0, "redis": 28.0},
        syscall_entry_ns=40.0,
        lmbench_handler_ns={"null": 12.0, "read": 56.0, "write": 55.0},
        packet_ns=1337.0,
        app_work_factor=1.0,
        workload_quirks={
            "nginx-conn": UnikernelWorkloadQuirk(
                handshake_factor=0.08,
                note="NetBSD handshake handled inline in the solo5 event "
                     "loop; no per-flow hook work",
            ),
            "nginx-sess": UnikernelWorkloadQuirk(
                extra_ns=7602.0,
                note="single-threaded stack saturates under sustained "
                     "keep-alive load",
            ),
        },
        fork_behaviour="crash (no process support in rump kernels)",
    )
