"""Figure 11: syscall latency vs number of background control processes."""

from __future__ import annotations

from typing import Dict, List

from repro.core.variants import Variant, build_variant
from repro.metrics.reporting import Figure
from repro.workloads.control_procs import run_with_control_processes

POWERS = tuple(range(11))  # 2^0 .. 2^10


def run() -> Dict[str, List[tuple]]:
    """series name ('KML Null', 'NOKML Read', ...) -> [(procs, us), ...]."""
    kml_build = build_variant(Variant.LUPINE)
    nokml_build = build_variant(Variant.LUPINE_NOKML)
    series: Dict[str, List[tuple]] = {}
    for label, build in (("KML", kml_build), ("NOKML", nokml_build)):
        for test in ("null", "read", "write"):
            series[f"{label} {test.title()}"] = []
    for power in POWERS:
        count = 2 ** power
        for label, build in (("KML", kml_build), ("NOKML", nokml_build)):
            result = run_with_control_processes(build.syscall_engine(), count)
            for test in ("null", "read", "write"):
                series[f"{label} {test.title()}"].append(
                    (count, result.latencies_us[test])
                )
    return series


def figure() -> Figure:
    output = Figure(
        title="Figure 11: syscall latency vs background control processes",
        x_label="# control processes",
        y_label="microseconds",
    )
    for name, points in run().items():
        output.add_series(name, points)
    return output
