"""Figure 11: syscall latency vs number of background control processes.

Each (variant, process-count) cell runs on a fresh
:class:`~repro.simcore.guest.Guest`; the control processes sleep on the
guest's scheduler while its engine takes the latency measurements.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.variants import Variant
from repro.metrics.reporting import Figure
from repro.simcore import variant_guest
from repro.workloads.control_procs import run_with_control_processes

POWERS = tuple(range(11))  # 2^0 .. 2^10


def run() -> Dict[str, List[tuple]]:
    """series name ('KML Null', 'NOKML Read', ...) -> [(procs, us), ...]."""
    series: Dict[str, List[tuple]] = {}
    for label in ("KML", "NOKML"):
        for test in ("null", "read", "write"):
            series[f"{label} {test.title()}"] = []
    for power in POWERS:
        count = 2 ** power
        for label, variant in (("KML", Variant.LUPINE),
                               ("NOKML", Variant.LUPINE_NOKML)):
            guest = variant_guest(variant)
            result = run_with_control_processes(guest.engine, count)
            for test in ("null", "read", "write"):
                series[f"{label} {test.title()}"].append(
                    (count, result.latencies_us[test])
                )
    return series


def figure() -> Figure:
    output = Figure(
        title="Figure 11: syscall latency vs background control processes",
        x_label="# control processes",
        y_label="microseconds",
    )
    for name, points in run().items():
        output.add_series(name, points)
    return output
