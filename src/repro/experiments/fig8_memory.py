"""Figure 8: memory footprint (hello / nginx / redis).

The footprint is the minimum memory with which the guest still runs,
found by the decreasing-memory search of Section 4.4.  HermiTux cannot run
nginx, so that bar is absent (None).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.apps.registry import get_app
from repro.core.lupine import LupineBuilder
from repro.core.variants import Variant, build_microvm
from repro.metrics.reporting import Figure
from repro.mm.footprint import FootprintModel, measure_min_memory_mb
from repro.unikernels import AppNotSupported, HermiTux, OSv, Rumprun

APPS = ("hello-world", "nginx", "redis")


def _linux_footprint(image, app) -> int:
    model = FootprintModel(
        image=image,
        app_resident_kb=float(app.resident_kb),
        app_mapped_kb=float(app.binary_size_kb),
    )
    return measure_min_memory_mb(model.try_boot)


def run() -> Dict[str, Dict[str, Optional[int]]]:
    """system -> app -> min memory MB (None where the app cannot run)."""
    results: Dict[str, Dict[str, Optional[int]]] = {}
    microvm = build_microvm()
    results["microvm"] = {
        name: _linux_footprint(microvm.image, get_app(name)) for name in APPS
    }
    for label, variant in (("lupine", Variant.LUPINE),
                           ("lupine-general", Variant.LUPINE_GENERAL)):
        row: Dict[str, Optional[int]] = {}
        for name in APPS:
            unikernel = LupineBuilder(variant=variant).build_for_app(
                get_app(name)
            )
            row[name] = unikernel.min_memory_mb()
        results[label] = row
    for unikernel in (HermiTux(), OSv(), Rumprun()):
        row = {}
        for name in APPS:
            try:
                row[name] = unikernel.min_memory_mb(get_app(name))
            except AppNotSupported:
                row[name] = None
        results[unikernel.name.replace("-rofs", "")] = row
    return results


def figure() -> Figure:
    results = run()
    output = Figure(
        title="Figure 8: memory footprint",
        x_label="system",
        y_label="MB",
    )
    for app_name in APPS:
        output.add_series(
            app_name,
            [(system, row.get(app_name)) for system, row in results.items()],
        )
    return output
