"""Extension experiment: serverless cold-start latency (see DESIGN.md §6)."""

from __future__ import annotations

from typing import Dict

from repro.metrics.reporting import Table
from repro.workloads.coldstart import ColdStartResult, run_cold_starts


def run() -> Dict[str, ColdStartResult]:
    return run_cold_starts()


def table() -> Table:
    output = Table(
        title="Extension: serverless cold start (redis function)",
        headers=["system", "boot ms", "app init ms", "first req ms",
                 "total ms"],
    )
    for result in sorted(run().values(), key=lambda r: r.total_ms):
        output.add_row(result.system, result.boot_ms, result.app_init_ms,
                       result.first_request_ms, result.total_ms)
    return output
