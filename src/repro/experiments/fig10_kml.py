"""Figure 10: KML improvement vs busy-wait iterations between syscalls.

Each iteration point measures a fresh KML guest against a fresh no-KML
guest (:mod:`repro.simcore`), so per-guest jitter state never leaks
between points.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.variants import Variant
from repro.metrics.reporting import Figure
from repro.simcore import variant_guest
from repro.syscall.lmbench import kml_improvement

ITERATION_POINTS = (0, 10, 20, 40, 60, 80, 100, 120, 140, 160)


def run() -> List[Tuple[int, float]]:
    points = []
    for iterations in ITERATION_POINTS:
        improvement = kml_improvement(
            variant_guest(Variant.LUPINE).engine,
            variant_guest(Variant.LUPINE_NOKML).engine,
            iterations,
        )
        points.append((iterations, improvement))
    return points


def figure() -> Figure:
    output = Figure(
        title="Figure 10: KML syscall latency improvement vs busy-wait",
        x_label="iterations between system calls",
        y_label="KML improvement (fraction)",
    )
    output.add_series("improvement", run())
    return output
