"""Figure 10: KML improvement vs busy-wait iterations between syscalls."""

from __future__ import annotations

from typing import List, Tuple

from repro.core.variants import Variant, build_variant
from repro.metrics.reporting import Figure
from repro.syscall.lmbench import kml_improvement

ITERATION_POINTS = (0, 10, 20, 40, 60, 80, 100, 120, 140, 160)


def run() -> List[Tuple[int, float]]:
    kml_build = build_variant(Variant.LUPINE)
    nokml_build = build_variant(Variant.LUPINE_NOKML)
    points = []
    for iterations in ITERATION_POINTS:
        improvement = kml_improvement(
            kml_build.syscall_engine(),
            nokml_build.syscall_engine(),
            iterations,
        )
        points.append((iterations, improvement))
    return points


def figure() -> Figure:
    output = Figure(
        title="Figure 10: KML syscall latency improvement vs busy-wait",
        x_label="iterations between system calls",
        y_label="KML improvement (fraction)",
    )
    output.add_series("improvement", run())
    return output
