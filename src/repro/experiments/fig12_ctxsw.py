"""Figure 12: perf context-switch benchmark, threads vs processes.

Each (groups, variant, mode) cell runs the messaging benchmark on a
fresh :class:`~repro.simcore.guest.Guest`'s engine.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.variants import Variant
from repro.metrics.reporting import Figure
from repro.simcore import variant_guest
from repro.workloads.perf_messaging import run_messaging

GROUP_COUNTS = (1, 2, 4, 8, 16)


def run() -> Dict[str, List[tuple]]:
    """series -> [(groups, ms per 100-message batch), ...]."""
    series: Dict[str, List[tuple]] = {
        "KML Thread": [], "KML Process": [],
        "NOKML Thread": [], "NOKML Process": [],
    }
    for groups in GROUP_COUNTS:
        for label, variant in (("KML", Variant.LUPINE),
                               ("NOKML", Variant.LUPINE_NOKML)):
            for mode, use_processes in (("Thread", False), ("Process", True)):
                guest = variant_guest(variant)
                result = run_messaging(guest.engine, groups, use_processes)
                series[f"{label} {mode}"].append(
                    (groups, result.ms_per_batch)
                )
    return series


def max_process_penalty() -> float:
    """Worst-case slowdown of processes vs threads across the sweep."""
    results = run()
    worst = 0.0
    for label in ("KML", "NOKML"):
        threads = dict(results[f"{label} Thread"])
        processes = dict(results[f"{label} Process"])
        for groups in GROUP_COUNTS:
            worst = max(worst, processes[groups] / threads[groups] - 1.0)
    return worst


def figure() -> Figure:
    output = Figure(
        title="Figure 12: perf messaging, threads vs processes",
        x_label="# groups (10 senders + 10 receivers each)",
        y_label="ms per 100-message batch",
    )
    for name, points in run().items():
        output.add_series(name, points)
    return output
