"""Figure 4: breakdown of microVM options removed for lupine-base."""

from __future__ import annotations

from typing import Dict

from repro.core.classification import CATEGORY_LABELS, classify_microvm_options
from repro.metrics.reporting import Table


def run() -> Dict[str, int]:
    classification = classify_microvm_options()
    counts = classification.category_counts()
    return {
        "microvm": len(classification.microvm),
        "removed": len(classification.removed),
        "app": counts["app"],
        "mp": counts["mp"],
        "hw": counts["hw"],
        "lupine-base": len(classification.lupine_base),
    }


def subcategories() -> Dict[str, int]:
    classification = classify_microvm_options()
    return {
        f"{category}:{subcategory}": count
        for (category, subcategory), count in sorted(
            classification.subcategory_counts().items()
        )
    }


def table() -> Table:
    results = run()
    output = Table(
        title="Figure 4: kernel configuration option breakdown",
        headers=["category", "options"],
    )
    output.add_row("microVM configuration", results["microvm"])
    for category in ("app", "mp", "hw"):
        output.add_row(f"  removed: {CATEGORY_LABELS[category]}",
                       results[category])
    output.add_row("lupine-base (remaining)", results["lupine-base"])
    for name, count in subcategories().items():
        output.add_row(f"    {name}", count)
    return output
