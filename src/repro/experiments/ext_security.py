"""Extension experiment: attack surface & CVE nullification (DESIGN.md §6)."""

from __future__ import annotations

from typing import Dict

from repro.core.specialization import lupine_general_config
from repro.kconfig.configs import lupine_base_config, microvm_config
from repro.metrics.reporting import Table
from repro.security import AttackSurfaceReport, analyze_config


def run() -> Dict[str, AttackSurfaceReport]:
    return {
        "microvm": analyze_config(microvm_config()),
        "lupine-base": analyze_config(lupine_base_config()),
        "lupine-general": analyze_config(lupine_general_config()),
    }


def table() -> Table:
    reports = run()
    output = Table(
        title="Extension: attack surface & CVE nullification",
        headers=["config", "surface MB", "reachable syscalls",
                 "CVEs nullified %", "surface reduction vs microVM %"],
    )
    baseline = reports["microvm"]
    for name, report in reports.items():
        output.add_row(
            name,
            report.surface_kb / 1024.0,
            report.reachable_syscalls,
            report.nullification_rate * 100.0,
            report.surface_reduction_vs(baseline) * 100.0,
        )
    return output
