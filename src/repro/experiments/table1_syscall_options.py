"""Table 1: Linux configuration options that enable/disable system calls."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.metrics.reporting import Table
from repro.syscall.table import OPTION_SYSCALLS

#: The twelve rows of the paper's Table 1 (the mapping has a few more
#: entries used elsewhere in the evaluation, e.g. SYSVIPC for postgres).
PAPER_TABLE1_OPTIONS: Tuple[str, ...] = (
    "ADVISE_SYSCALLS",
    "AIO",
    "BPF_SYSCALL",
    "EPOLL",
    "EVENTFD",
    "FANOTIFY",
    "FHANDLE",
    "FILE_LOCKING",
    "FUTEX",
    "INOTIFY_USER",
    "SIGNALFD",
    "TIMERFD",
)


def run() -> Dict[str, Tuple[str, ...]]:
    return {
        option: OPTION_SYSCALLS[option] for option in PAPER_TABLE1_OPTIONS
    }


def table() -> Table:
    output = Table(
        title="Table 1: config options that enable/disable system calls",
        headers=["Option", "Enabled system call(s)"],
    )
    for option, syscalls in run().items():
        output.add_row(option, ", ".join(syscalls))
    return output
