"""Table 4: application performance normalized to microVM.

redis-benchmark GET/SET and ab against nginx (connection- and
session-based).  OSv values for nginx are N/A (drops connections) and
HermiTux cannot run nginx (not curated) -- like the paper's empty cells.

Each Linux row drives the benchmarks against per-app
:class:`~repro.simcore.guest.Guest`\\ s: one redis guest and one nginx
guest per kernel, each serving its workloads on its own virtual clock.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.apps.registry import get_app
from repro.core.variants import Variant
from repro.metrics.reporting import Table
from repro.simcore import Guest, microvm_guest, variant_guest
from repro.unikernels import HermiTux, OSv, Rumprun
from repro.workloads.nginx import ApacheBench, NGINX_CONN, NGINX_SESS
from repro.workloads.redis import REDIS_GET, REDIS_SET, RedisBenchmark

COLUMNS = ("redis-get", "redis-set", "nginx-conn", "nginx-sess")

LUPINE_VARIANTS = (
    Variant.LUPINE_GENERAL,
    Variant.LUPINE,
    Variant.LUPINE_TINY,
    Variant.LUPINE_NOKML,
    Variant.LUPINE_NOKML_TINY,
)


def _linux_rates(guest_for_app: Callable[[str], Guest]) -> Dict[str, float]:
    redis_bench, apache_bench = RedisBenchmark(), ApacheBench()
    redis_guest = guest_for_app("redis")
    nginx_guest = guest_for_app("nginx")
    return {
        "redis-get": redis_bench.get_rps(redis_guest.server_stack),
        "redis-set": redis_bench.set_rps(redis_guest.server_stack),
        "nginx-conn": apache_bench.conn_rps(nginx_guest.server_stack),
        "nginx-sess": apache_bench.sess_rps(nginx_guest.server_stack),
    }


def _unikernel_rates(unikernel) -> Dict[str, Optional[float]]:
    rates: Dict[str, Optional[float]] = {}
    profiles = {
        "redis-get": ("redis", REDIS_GET),
        "redis-set": ("redis", REDIS_SET),
        "nginx-conn": ("nginx", NGINX_CONN),
        "nginx-sess": ("nginx", NGINX_SESS),
    }
    for column, (app_name, profile) in profiles.items():
        app = get_app(app_name)
        if not unikernel.can_run(app):
            rates[column] = None
            continue
        request_ns = unikernel.request_ns(profile)
        rates[column] = None if request_ns == float("inf") else 1e9 / request_ns
    return rates


def run() -> Dict[str, Dict[str, Optional[float]]]:
    """system -> column -> throughput normalized to microVM."""
    baseline = _linux_rates(lambda _app: microvm_guest())
    results: Dict[str, Dict[str, Optional[float]]] = {
        "microVM": {column: 1.0 for column in COLUMNS}
    }
    for variant in LUPINE_VARIANTS:
        rates = _linux_rates(
            lambda app_name, v=variant: variant_guest(v, app_name)
        )
        results[variant.value] = {
            column: rates[column] / baseline[column] for column in COLUMNS
        }
    for unikernel in (HermiTux(), OSv(), Rumprun()):
        rates = _unikernel_rates(unikernel)
        results[unikernel.name.replace("-rofs", "")] = {
            column: (
                rates[column] / baseline[column]
                if rates[column] is not None
                else None
            )
            for column in COLUMNS
        }
    return results


def table() -> Table:
    results = run()
    output = Table(
        title="Table 4: application performance normalized to microVM "
              "(higher is better)",
        headers=["Name"] + list(COLUMNS),
    )
    for system, row in results.items():
        output.add_row(system, *[row[column] for column in COLUMNS])
    return output
