"""Figure 7: boot time for hello world.

As in the paper, the Lupine bars are ``-nokml`` (CONFIG_PARAVIRT conflicts
with KML and dominates boot; Section 4.3); ``lupine-kml-noparavirt`` is the
71 ms data point the text reports for completeness.
"""

from __future__ import annotations

from typing import Dict

from repro.boot.bootsim import BootSimulator
from repro.core.variants import Variant, build_microvm, build_variant
from repro.metrics.reporting import Figure
from repro.unikernels import HermiTux, OSv, Rumprun
from repro.vmm.monitor import firecracker


def run() -> Dict[str, float]:
    simulator = BootSimulator(monitor_setup_ms=firecracker().setup_ms)
    results = {
        "microvm": simulator.boot(build_microvm().image).total_ms,
        "lupine-nokml": simulator.boot(
            build_variant(Variant.LUPINE_NOKML).image
        ).total_ms,
        "lupine-nokml-general": simulator.boot(
            build_variant(Variant.LUPINE_GENERAL_NOKML).image
        ).total_ms,
        "lupine-nokml-tiny": simulator.boot(
            build_variant(Variant.LUPINE_NOKML_TINY).image
        ).total_ms,
        "lupine-kml-noparavirt": simulator.boot(
            build_variant(Variant.LUPINE).image
        ).total_ms,
        "hermitux": HermiTux().boot_report().total_ms,
        "osv-rofs": OSv("rofs").boot_report().total_ms,
        "osv-zfs": OSv("zfs").boot_report().total_ms,
        "rump": Rumprun().boot_report().total_ms,
    }
    return results


def figure() -> Figure:
    results = run()
    output = Figure(
        title="Figure 7: boot time for hello world",
        x_label="system",
        y_label="milliseconds",
    )
    output.add_series("boot time", list(results.items()))
    return output
