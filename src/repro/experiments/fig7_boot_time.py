"""Figure 7: boot time for hello world.

As in the paper, the Lupine bars are ``-nokml`` (CONFIG_PARAVIRT conflicts
with KML and dominates boot; Section 4.3); ``lupine-kml-noparavirt`` is the
71 ms data point the text reports for completeness.

Each Linux bar boots one :class:`~repro.simcore.guest.Guest` on its own
virtual clock; the unikernel comparators keep their own boot models.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.variants import Variant
from repro.metrics.reporting import Figure
from repro.simcore import microvm_guest, variant_guest
from repro.unikernels import HermiTux, OSv, Rumprun


def _boot_ms(variant: Optional[Variant]) -> float:
    guest = microvm_guest() if variant is None else variant_guest(variant)
    return guest.boot().total_ms


def run() -> Dict[str, float]:
    results = {
        "microvm": _boot_ms(None),
        "lupine-nokml": _boot_ms(Variant.LUPINE_NOKML),
        "lupine-nokml-general": _boot_ms(Variant.LUPINE_GENERAL_NOKML),
        "lupine-nokml-tiny": _boot_ms(Variant.LUPINE_NOKML_TINY),
        "lupine-kml-noparavirt": _boot_ms(Variant.LUPINE),
        "hermitux": HermiTux().boot_report().total_ms,
        "osv-rofs": OSv("rofs").boot_report().total_ms,
        "osv-zfs": OSv("zfs").boot_report().total_ms,
        "rump": Rumprun().boot_report().total_ms,
    }
    return results


def figure() -> Figure:
    results = run()
    output = Figure(
        title="Figure 7: boot time for hello world",
        x_label="system",
        y_label="milliseconds",
    )
    output.add_series("boot time", list(results.items()))
    return output
