"""Figure 6: kernel image size for hello world."""

from __future__ import annotations

from typing import Dict

from repro.apps.registry import get_app
from repro.core.variants import Variant, build_microvm, build_variant
from repro.metrics.reporting import Figure
from repro.unikernels import HermiTux, OSv, Rumprun


def run() -> Dict[str, float]:
    """System -> compressed kernel image size in MB (hello world config)."""
    hello = get_app("hello-world")
    results = {
        "microvm": build_microvm().image.size_mb,
        "lupine": build_variant(Variant.LUPINE).image.size_mb,
        "lupine-tiny": build_variant(Variant.LUPINE_TINY).image.size_mb,
        "lupine-general": build_variant(Variant.LUPINE_GENERAL).image.size_mb,
        "hermitux": HermiTux().image_size_mb(hello),
        "osv": OSv().image_size_mb(hello),
        "rump": Rumprun().image_size_mb(hello),
    }
    return results


def app_specific_range() -> Dict[str, float]:
    """Per-app Lupine image sizes as a fraction of microVM (27-33%)."""
    from repro.apps.registry import top20_in_popularity_order

    microvm_mb = build_microvm().image.size_mb
    fractions = {}
    for app in top20_in_popularity_order():
        image = build_variant(Variant.LUPINE_NOKML, app).image
        fractions[app.name] = image.size_mb / microvm_mb
    return fractions


def figure() -> Figure:
    results = run()
    output = Figure(
        title="Figure 6: image size for hello world",
        x_label="system",
        y_label="MB",
    )
    output.add_series("image size", list(results.items()))
    return output
