"""Figure 5: growth of unique kernel config options to support more apps."""

from __future__ import annotations

from typing import List

from repro.apps.registry import cumulative_option_growth
from repro.metrics.reporting import Figure


def run() -> List[int]:
    return cumulative_option_growth()


def figure() -> Figure:
    growth = run()
    output = Figure(
        title="Figure 5: unique config options vs apps supported",
        x_label="support for top x apps",
        y_label="number of config options",
    )
    output.add_series(
        "union of app-specific options",
        [(index + 1, count) for index, count in enumerate(growth)],
    )
    return output
