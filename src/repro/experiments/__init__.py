"""Experiment drivers: one module per paper table/figure.

Each module exposes a ``run()`` returning structured results plus a
``figure()``/``table()`` renderer producing the same rows/series the paper
reports.  The benchmark harness, the CLI and EXPERIMENTS.md all consume
these, so there is exactly one implementation of every experiment.
"""

from repro.experiments import (  # noqa: F401
    ext_coldstart,
    ext_derived,
    ext_security,
    fig3_config_options,
    fig4_breakdown,
    fig5_growth,
    fig6_image_size,
    fig7_boot_time,
    fig8_memory,
    fig9_syscalls,
    fig10_kml,
    fig11_control,
    fig12_ctxsw,
    sec5_smp,
    table1_syscall_options,
    table3_top20,
    table4_apps,
    table5_lmbench,
)

#: The paper's own tables and figures.
PAPER_EXPERIMENTS = {
    "fig3": fig3_config_options,
    "fig4": fig4_breakdown,
    "table1": table1_syscall_options,
    "table3": table3_top20,
    "fig5": fig5_growth,
    "fig6": fig6_image_size,
    "fig7": fig7_boot_time,
    "fig8": fig8_memory,
    "fig9": fig9_syscalls,
    "fig10": fig10_kml,
    "table4": table4_apps,
    "fig11": fig11_control,
    "fig12": fig12_ctxsw,
    "sec5": sec5_smp,
    "table5": table5_lmbench,
}

#: Extension studies (DESIGN.md §6), runnable through the same harness.
EXTENSION_EXPERIMENTS = {
    "ext-coldstart": ext_coldstart,
    "ext-derived": ext_derived,
    "ext-security": ext_security,
}

ALL_EXPERIMENTS = {**PAPER_EXPERIMENTS, **EXTENSION_EXPERIMENTS}
