"""Table 5 (Appendix A): full lmbench, microVM vs lupine-general.

Each column is one :class:`~repro.simcore.guest.Guest`; the suite runs
against its engine and network path.
"""

from __future__ import annotations

from typing import Dict

from repro.core.variants import Variant
from repro.metrics.reporting import Table
from repro.simcore import microvm_guest, variant_guest
from repro.syscall.lmbench import LmbenchReport, run_suite


def run() -> Dict[str, LmbenchReport]:
    microvm = microvm_guest()
    general = variant_guest(Variant.LUPINE_GENERAL)
    return {
        "microvm": run_suite(
            microvm.engine, "microvm",
            net_stack_ns=microvm.netpath.packet_ns(),
        ),
        "lupine-general": run_suite(
            general.engine, "lupine-general",
            net_stack_ns=general.netpath.packet_ns(),
        ),
    }


def table() -> Table:
    reports = run()
    microvm, general = reports["microvm"], reports["lupine-general"]
    output = Table(
        title="Table 5: lmbench, microVM vs lupine-general",
        headers=["Op", "MicroVM", "Lupine-general", "unit"],
    )
    for name in microvm.latencies_us:
        output.add_row(
            name, microvm.latencies_us[name], general.latencies_us[name],
            "us",
        )
    for name in microvm.bandwidths_mb_s:
        output.add_row(
            name, microvm.bandwidths_mb_s[name],
            general.bandwidths_mb_s[name], "MB/s",
        )
    return output
