"""Figure 9: system call latency via lmbench (null/read/write)."""

from __future__ import annotations

from typing import Dict

from repro.core.variants import Variant, build_microvm, build_variant
from repro.metrics.reporting import Figure
from repro.syscall.lmbench import (
    null_latency_us,
    read_latency_us,
    write_latency_us,
)
from repro.unikernels import HermiTux, OSv, Rumprun

TESTS = ("null", "read", "write")


def _linux_row(build) -> Dict[str, float]:
    measurements = {}
    for test, runner in (("null", null_latency_us), ("read", read_latency_us),
                         ("write", write_latency_us)):
        engine = build.syscall_engine()
        measurements[test] = runner(engine)
    return measurements


def run() -> Dict[str, Dict[str, float]]:
    results = {
        "microvm": _linux_row(build_microvm()),
        "lupine-nokml": _linux_row(build_variant(Variant.LUPINE_NOKML)),
        "lupine": _linux_row(build_variant(Variant.LUPINE)),
        "lupine-general": _linux_row(build_variant(Variant.LUPINE_GENERAL)),
    }
    for unikernel in (HermiTux(), OSv(), Rumprun()):
        results[unikernel.name.replace("-rofs", "")] = {
            test: unikernel.lmbench_us(test) for test in TESTS
        }
    return results


def specialization_improvement() -> float:
    """Best-case latency improvement of lupine-nokml over microVM (write)."""
    results = run()
    return 1.0 - results["lupine-nokml"]["write"] / results["microvm"]["write"]


def kml_improvement() -> float:
    """KML improvement over lupine-nokml on the null test."""
    results = run()
    return 1.0 - results["lupine"]["null"] / results["lupine-nokml"]["null"]


def figure() -> Figure:
    results = run()
    output = Figure(
        title="Figure 9: system call latency via lmbench",
        x_label="system",
        y_label="microseconds",
    )
    for test in TESTS:
        output.add_series(
            test, [(system, row[test]) for system, row in results.items()]
        )
    return output
