"""Figure 9: system call latency via lmbench (null/read/write).

Every measurement runs on a fresh :class:`~repro.simcore.guest.Guest`
(its engine bound to the guest's virtual clock), matching lmbench's
practice of a clean process per timing run.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.variants import Variant
from repro.metrics.reporting import Figure
from repro.simcore import microvm_guest, variant_guest
from repro.syscall.lmbench import (
    null_latency_us,
    read_latency_us,
    write_latency_us,
)
from repro.unikernels import HermiTux, OSv, Rumprun

TESTS = ("null", "read", "write")


def _linux_row(variant: Optional[Variant]) -> Dict[str, float]:
    measurements = {}
    for test, runner in (("null", null_latency_us), ("read", read_latency_us),
                         ("write", write_latency_us)):
        guest = microvm_guest() if variant is None else variant_guest(variant)
        measurements[test] = runner(guest.engine)
    return measurements


def run() -> Dict[str, Dict[str, float]]:
    results = {
        "microvm": _linux_row(None),
        "lupine-nokml": _linux_row(Variant.LUPINE_NOKML),
        "lupine": _linux_row(Variant.LUPINE),
        "lupine-general": _linux_row(Variant.LUPINE_GENERAL),
    }
    for unikernel in (HermiTux(), OSv(), Rumprun()):
        results[unikernel.name.replace("-rofs", "")] = {
            test: unikernel.lmbench_us(test) for test in TESTS
        }
    return results


def specialization_improvement() -> float:
    """Best-case latency improvement of lupine-nokml over microVM (write)."""
    results = run()
    return 1.0 - results["lupine-nokml"]["write"] / results["microvm"]["write"]


def kml_improvement() -> float:
    """KML improvement over lupine-nokml on the null test."""
    results = run()
    return 1.0 - results["lupine"]["null"] / results["lupine-nokml"]["null"]


def figure() -> Figure:
    results = run()
    output = Figure(
        title="Figure 9: system call latency via lmbench",
        x_label="system",
        y_label="microseconds",
    )
    for test in TESTS:
        output.add_series(
            test, [(system, row[test]) for system, row in results.items()]
        )
    return output
