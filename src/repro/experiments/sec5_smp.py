"""Section 5: worst-case overhead of CONFIG_SMP on a single processor."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.metrics.reporting import Table
from repro.workloads.smp_stress import run_make_j, smp_overhead

WORKER_COUNTS = (1, 4, 16, 64, 256, 512)


def run() -> Dict[str, List[Tuple[int, float]]]:
    """workload -> [(workers, fractional overhead), ...]."""
    results: Dict[str, List[Tuple[int, float]]] = {}
    for workload in ("sem_posix", "futex"):
        results[workload] = [
            (workers, smp_overhead(workload, workers))
            for workers in WORKER_COUNTS
        ]
    results["make-j"] = [
        (jobs, smp_overhead("make-j", jobs)) for jobs in (1, 2, 8, 64, 512)
    ]
    return results


def dual_cpu_build_speedup() -> float:
    """Building with 2 CPUs vs 1 (the paper: 'almost twice as long')."""
    one = run_make_j(jobs=2, smp_enabled=True, cpus=1).elapsed_s
    two = run_make_j(jobs=2, smp_enabled=True, cpus=2).elapsed_s
    return one / two


def table() -> Table:
    output = Table(
        title="Section 5: SMP overhead on one processor",
        headers=["workload", "workers", "overhead %"],
    )
    for workload, points in run().items():
        for workers, overhead in points:
            output.add_row(workload, workers, overhead * 100.0)
    return output
