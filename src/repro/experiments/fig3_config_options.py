"""Figure 3: Linux kernel configuration options per source directory.

Series: total options in the tree, options selected by microVM, and options
in lupine-base -- log scale in the paper; we emit the raw counts.
"""

from __future__ import annotations

from typing import Dict

from repro.kconfig.configs import lupine_base_config, microvm_config
from repro.kconfig.database import build_linux_tree
from repro.metrics.reporting import Figure, Table


def run() -> Dict[str, Dict[str, int]]:
    tree = build_linux_tree()
    total = tree.count_by_directory()
    microvm = tree.count_selected_by_directory(microvm_config(tree).enabled)
    lupine = tree.count_selected_by_directory(
        lupine_base_config(tree).enabled
    )
    return {"total": total, "microvm": microvm, "lupine-base": lupine}


def table() -> Table:
    results = run()
    directories = sorted(
        results["total"], key=lambda d: -results["total"][d]
    )
    output = Table(
        title="Figure 3: config options per directory",
        headers=["directory", "total", "microvm", "lupine-base"],
    )
    for directory in directories:
        output.add_row(
            directory,
            results["total"][directory],
            results["microvm"].get(directory, 0),
            results["lupine-base"].get(directory, 0),
        )
    output.add_row(
        "TOTAL",
        sum(results["total"].values()),
        sum(results["microvm"].values()),
        sum(results["lupine-base"].values()),
    )
    return output


def figure() -> Figure:
    results = run()
    directories = sorted(results["total"], key=lambda d: -results["total"][d])
    output = Figure(
        title="Figure 3: config options (log scale in paper)",
        x_label="directory",
        y_label="option count",
    )
    for series_name in ("total", "microvm", "lupine-base"):
        output.add_series(
            series_name,
            [(d, results[series_name].get(d, 0)) for d in directories],
        )
    return output
