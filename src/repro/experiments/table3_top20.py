"""Table 3: top-20 Docker Hub applications and options atop lupine-base."""

from __future__ import annotations

from typing import Dict

from repro.apps.registry import top20_in_popularity_order
from repro.core.specialization import app_option_requirements
from repro.metrics.reporting import Table


def run() -> Dict[str, int]:
    """App -> option count, derived through the manifest pipeline."""
    return {
        app.name: len(app_option_requirements(app))
        for app in top20_in_popularity_order()
    }


def table() -> Table:
    output = Table(
        title="Table 3: top-20 Docker Hub applications",
        headers=["Name", "Downloads (B)", "Description",
                 "# options atop lupine-base"],
    )
    counts = run()
    for app in top20_in_popularity_order():
        output.add_row(
            app.name, app.downloads_billions, app.description,
            counts[app.name],
        )
    return output
