"""Extension experiment: trace-derived vs curated vs general configs.

The Loupe loop closed (see docs/SPECIALIZATION.md): record each app's
usage under a recorder, derive its config from the observation, and
compare the result against the hand-curated per-app config and the
lupine-general union on the paper's own axes -- image size, boot time,
serving throughput -- plus the syscall-surface delta.

The apps are chosen to span the interesting cases: nginx (the largest
curated option set), redis (the paper's running example), and php (the
app whose curated manifest lists *no* options even though its request
loop epolls -- the derived config enables ``EPOLL`` and serves, while
the curated config ENOSYSes on the first request).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.apps.registry import get_app
from repro.core.optionset import option_surface
from repro.core.orchestrator import serving_profile
from repro.core.variants import Variant, build_variant
from repro.harness.codec import register_result_dataclass
from repro.metrics.reporting import Table
from repro.simcore import variant_guest
from repro.simcore.guest import GuestLifecycleError
from repro.syscall.dispatch import SyscallNotImplemented

#: Apps compared (see module docstring for why these three).
APPS = ("nginx", "redis", "php")

#: Config families compared, all -nokml so boot times are comparable
#: (CONFIG_PARAVIRT conflicts with KML and dominates boot; Section 4.3).
FAMILIES = (
    ("curated", Variant.LUPINE_NOKML),
    ("derived", Variant.LUPINE_DERIVED_NOKML),
    ("general", Variant.LUPINE_GENERAL_NOKML),
)

#: Requests served per throughput measurement.
REQUESTS = 2000


@register_result_dataclass
@dataclass(frozen=True)
class DerivedComparison:
    """One (app, family) cell of the comparison."""

    app: str
    family: str
    image_mb: float
    boot_ms: float
    throughput_krps: float  # 0.0 => the config cannot serve (ENOSYS)
    option_count: int
    reachable_syscalls: int


def _measure(app_name: str, family: str, variant: Variant) -> DerivedComparison:
    build = build_variant(
        variant, None if variant.general else get_app(app_name)
    )
    surface = option_surface(build.config)
    guest = variant_guest(variant, None if variant.general else app_name,
                          name=f"ext-derived:{variant.value}[{app_name}]")
    boot_ms = guest.boot().total_ms
    profile = serving_profile(app_name)
    start_ns = guest.engine.clock_ns
    try:
        guest.serve(profile, REQUESTS)
        elapsed_ns = guest.engine.clock_ns - start_ns
        throughput = REQUESTS / (elapsed_ns / 1e9) / 1000.0
    except (SyscallNotImplemented, GuestLifecycleError):
        # The config cannot serve this workload at all: a gated-out
        # syscall (ENOSYS) or no compiled-in network stack.
        throughput = 0.0
    return DerivedComparison(
        app=app_name,
        family=family,
        image_mb=build.image.size_mb,
        boot_ms=boot_ms,
        throughput_krps=throughput,
        option_count=surface.option_count,
        reachable_syscalls=surface.reachable_syscalls,
    )


def run() -> Dict[str, Dict[str, DerivedComparison]]:
    """app -> family -> comparison cell."""
    return {
        app: {
            family: _measure(app, family, variant)
            for family, variant in FAMILIES
        }
        for app in APPS
    }


def table() -> Table:
    results = run()
    output = Table(
        title="Extension: trace-derived vs curated vs general configs",
        headers=["app", "family", "image MB", "boot ms", "kreq/s",
                 "options", "reachable syscalls"],
    )
    for app in APPS:
        for family, _ in FAMILIES:
            cell = results[app][family]
            output.add_row(
                app, family, cell.image_mb, cell.boot_ms,
                cell.throughput_krps, cell.option_count,
                cell.reachable_syscalls,
            )
    return output
