"""Monitor models: device surface, setup cost, guest compatibility.

A monitor contributes three things to the simulation:

- ``setup_ms``: process start + VM creation + kernel load initiation, the
  time before the guest's first instruction (Firecracker is ~8 ms; unikernel
  monitors are leaner; QEMU pays for its device emulation generality);
- a device surface: which virtual devices the guest can drive (a guest
  kernel missing a matching driver cannot mount its rootfs or reach the
  network);
- memory overhead charged outside the guest (not part of the Figure 8
  footprint, which is guest memory, but reported for completeness).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet

from repro.kbuild.image import KernelImage


class MonitorError(RuntimeError):
    """Raised when a guest cannot run on a monitor (no matching devices)."""


class DeviceKind(enum.Enum):
    """Virtual device families a monitor may expose."""

    VIRTIO_MMIO_BLK = "virtio-mmio-blk"
    VIRTIO_MMIO_NET = "virtio-mmio-net"
    VIRTIO_PCI = "virtio-pci"
    SERIAL_16550 = "serial-16550"
    SOLO5_BLK = "solo5-blk"
    SOLO5_NET = "solo5-net"
    UHYVE_BLK = "uhyve-blk"
    UHYVE_NET = "uhyve-net"
    EMULATED_IDE = "emulated-ide"
    EMULATED_E1000 = "emulated-e1000"
    VGA = "vga"


#: Guest config options that drive each device kind.
_DRIVER_OPTIONS = {
    DeviceKind.VIRTIO_MMIO_BLK: ("VIRTIO_MMIO", "VIRTIO_BLK"),
    DeviceKind.VIRTIO_MMIO_NET: ("VIRTIO_MMIO", "VIRTIO_NET"),
    DeviceKind.SERIAL_16550: ("SERIAL_8250",),
    DeviceKind.EMULATED_IDE: ("ATA",),
    DeviceKind.EMULATED_E1000: ("E1000",),
}


@dataclass(frozen=True)
class Monitor:
    """One virtual machine monitor."""

    name: str
    setup_ms: float
    devices: FrozenSet[DeviceKind]
    memory_overhead_mb: float
    max_vcpus: int
    measures_boot_via_io_port: bool = True
    loc_estimate: int = 0

    def check_linux_guest(self, image: KernelImage) -> None:
        """Validate that *image* can drive this monitor's devices.

        Raises :class:`MonitorError` when the guest has no driver for the
        monitor's block device or console -- the simulated analogue of a
        hang at boot.
        """
        from repro.faults import fault_site
        from repro.observe import METRICS, span

        with span("vmm.check_guest", category="vmm",
                  monitor=self.name, image=image.name):
            METRICS.counter("vmm.guest_checks").inc()
            # Fault site: an injected MonitorError models a guest that
            # cannot drive the monitor's devices (boot crash).
            with fault_site("vmm.check_guest"):
                pass
            if not self._has_driver(image, DeviceKind.VIRTIO_MMIO_BLK) and not (
                self._has_driver(image, DeviceKind.EMULATED_IDE)
            ):
                raise MonitorError(
                    f"{self.name}: guest kernel has no driver for any exposed "
                    "block device"
                )
            if DeviceKind.SERIAL_16550 in self.devices and not self._has_driver(
                image, DeviceKind.SERIAL_16550
            ):
                raise MonitorError(
                    f"{self.name}: guest kernel has no console driver"
                )

    def _has_driver(self, image: KernelImage, kind: DeviceKind) -> bool:
        if kind not in self.devices:
            return False
        required = _DRIVER_OPTIONS.get(kind, ())
        return all(image.has_option(option) for option in required)


def firecracker() -> Monitor:
    """AWS Firecracker: Rust microVM monitor, virtio-mmio, no PCI."""
    return Monitor(
        name="firecracker",
        setup_ms=8.0,
        devices=frozenset(
            {
                DeviceKind.VIRTIO_MMIO_BLK,
                DeviceKind.VIRTIO_MMIO_NET,
                DeviceKind.SERIAL_16550,
            }
        ),
        memory_overhead_mb=3.0,
        max_vcpus=32,
        loc_estimate=50_000,
    )


def qemu() -> Monitor:
    """Traditional QEMU: full device emulation (1.8M lines of C)."""
    return Monitor(
        name="qemu",
        setup_ms=110.0,
        devices=frozenset(
            {
                DeviceKind.VIRTIO_PCI,
                DeviceKind.EMULATED_IDE,
                DeviceKind.EMULATED_E1000,
                DeviceKind.SERIAL_16550,
                DeviceKind.VGA,
            }
        ),
        memory_overhead_mb=35.0,
        max_vcpus=255,
        loc_estimate=1_800_000,
    )


def solo5_hvt() -> Monitor:
    """solo5-hvt (ukvm descendant): Rumprun's unikernel monitor."""
    return Monitor(
        name="solo5-hvt",
        setup_ms=2.2,
        devices=frozenset({DeviceKind.SOLO5_BLK, DeviceKind.SOLO5_NET}),
        memory_overhead_mb=1.0,
        max_vcpus=1,
        loc_estimate=9_000,
    )


def uhyve() -> Monitor:
    """uhyve (ukvm descendant): HermiTux's unikernel monitor."""
    return Monitor(
        name="uhyve",
        setup_ms=2.0,
        devices=frozenset({DeviceKind.UHYVE_BLK, DeviceKind.UHYVE_NET}),
        memory_overhead_mb=1.0,
        max_vcpus=1,
        loc_estimate=8_000,
    )
