"""The Firecracker-style VM configuration API.

Models the control-plane sequence a Lupine deployment drives: configure the
machine (vCPUs, memory), point at a kernel image and boot args, attach
drives and network interfaces, then ``InstanceStart``.  State transitions
are enforced the way Firecracker enforces them (no reconfiguration after
start, exactly one root drive, boot source required), so orchestration code
exercised against this model catches the same mistakes it would against the
real API.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.boot.bootsim import BootReport, BootSimulator
from repro.boot.phases import RootfsKind
from repro.kbuild.image import KernelImage
from repro.vmm.monitor import Monitor, firecracker


class ApiError(RuntimeError):
    """An invalid API call sequence (Firecracker would return 400)."""


class InstanceState(enum.Enum):
    NOT_STARTED = "NotStarted"
    RUNNING = "Running"
    PAUSED = "Paused"
    STOPPED = "Stopped"


@dataclass
class MachineConfig:
    """PUT /machine-config payload."""

    vcpu_count: int = 1
    mem_size_mib: int = 512
    smt: bool = False

    def __post_init__(self) -> None:
        if not 1 <= self.vcpu_count <= 32:
            raise ApiError("vcpu_count must be in [1, 32]")
        if self.mem_size_mib < 1:
            raise ApiError("mem_size_mib must be positive")


@dataclass
class BootSource:
    """PUT /boot-source payload."""

    kernel_image: KernelImage
    boot_args: str = "console=ttyS0 reboot=k panic=1 pci=off"


@dataclass
class Drive:
    """PUT /drives/{id} payload."""

    drive_id: str
    is_root_device: bool
    is_read_only: bool
    size_mb: float


@dataclass
class NetworkInterface:
    """PUT /network-interfaces/{id} payload."""

    iface_id: str
    guest_mac: str = "AA:FC:00:00:00:01"


@dataclass
class MicrovmInstance:
    """One Firecracker-style microVM."""

    monitor: Monitor = field(default_factory=firecracker)
    state: InstanceState = InstanceState.NOT_STARTED
    machine_config: MachineConfig = field(default_factory=MachineConfig)
    boot_source: Optional[BootSource] = None
    drives: List[Drive] = field(default_factory=list)
    network_interfaces: List[NetworkInterface] = field(default_factory=list)
    boot_report: Optional[BootReport] = None

    # -- configuration (pre-start only) -------------------------------------

    def _check_configurable(self) -> None:
        if self.state is not InstanceState.NOT_STARTED:
            raise ApiError(
                "the instance is started; configuration is immutable"
            )

    def put_machine_config(self, config: MachineConfig) -> None:
        self._check_configurable()
        if config.vcpu_count > self.monitor.max_vcpus:
            raise ApiError(
                f"{self.monitor.name} supports at most "
                f"{self.monitor.max_vcpus} vCPUs"
            )
        self.machine_config = config

    def put_boot_source(self, source: BootSource) -> None:
        self._check_configurable()
        self.monitor.check_linux_guest(source.kernel_image)
        self.boot_source = source

    def put_drive(self, drive: Drive) -> None:
        self._check_configurable()
        if drive.is_root_device and any(
            d.is_root_device for d in self.drives
        ):
            raise ApiError("a root device is already attached")
        if any(d.drive_id == drive.drive_id for d in self.drives):
            raise ApiError(f"drive {drive.drive_id!r} already exists")
        self.drives.append(drive)

    def put_network_interface(self, interface: NetworkInterface) -> None:
        self._check_configurable()
        if any(i.iface_id == interface.iface_id
               for i in self.network_interfaces):
            raise ApiError(f"interface {interface.iface_id!r} already exists")
        self.network_interfaces.append(interface)

    # -- actions ---------------------------------------------------------------

    def instance_start(self) -> BootReport:
        self._check_configurable()
        if self.boot_source is None:
            raise ApiError("no boot source configured")
        if not any(d.is_root_device for d in self.drives):
            raise ApiError("no root device attached")
        simulator = BootSimulator(monitor_setup_ms=self.monitor.setup_ms)
        self.boot_report = simulator.boot(
            self.boot_source.kernel_image, rootfs=RootfsKind.EXT2
        )
        self.state = InstanceState.RUNNING
        return self.boot_report

    def pause(self) -> None:
        if self.state is not InstanceState.RUNNING:
            raise ApiError("only a running instance can be paused")
        self.state = InstanceState.PAUSED

    def resume(self) -> None:
        if self.state is not InstanceState.PAUSED:
            raise ApiError("only a paused instance can be resumed")
        self.state = InstanceState.RUNNING

    def stop(self) -> None:
        if self.state is InstanceState.NOT_STARTED:
            raise ApiError("instance was never started")
        self.state = InstanceState.STOPPED


def launch_lupine(unikernel, mem_size_mib: int = 128) -> MicrovmInstance:
    """Convenience: drive the full API sequence for a built Lupine guest."""
    instance = MicrovmInstance()
    instance.put_machine_config(
        MachineConfig(vcpu_count=1, mem_size_mib=mem_size_mib)
    )
    instance.put_boot_source(BootSource(kernel_image=unikernel.build.image))
    instance.put_drive(
        Drive(
            drive_id="rootfs",
            is_root_device=True,
            is_read_only=False,
            size_mb=unikernel.rootfs_size_mb,
        )
    )
    if unikernel.app is not None and unikernel.app.needs_network:
        instance.put_network_interface(NetworkInterface(iface_id="eth0"))
    instance.instance_start()
    return instance
