"""Virtual machine monitors.

Models the monitors the paper evaluates on: AWS Firecracker (used for
microVM and all Lupine variants, and for OSv), and the unikernel monitors
solo5-hvt (Rumprun) and uhyve (HermiTux), descendants of ukvm.  QEMU is
included as the traditional heavyweight baseline the paper contrasts in
Section 2.2.
"""

from repro.vmm.monitor import (
    DeviceKind,
    Monitor,
    MonitorError,
    firecracker,
    qemu,
    solo5_hvt,
    uhyve,
)

__all__ = [
    "DeviceKind",
    "Monitor",
    "MonitorError",
    "firecracker",
    "qemu",
    "solo5_hvt",
    "uhyve",
]
