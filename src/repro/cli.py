"""``repro-lupine``: command-line front end.

Subcommands:

- ``build APP``        -- run the Figure 2 pipeline for one of the top-20
  apps and print the resulting artifact sizes.
- ``boot APP``         -- build and boot, printing the phase breakdown.
- ``config APP``       -- print the derived kernel config fragment.
- ``experiment ID``    -- run one paper experiment (fig3..table5) and print
  the table/figure; ``all`` runs everything.
- ``run-all``          -- run every experiment through the parallel harness
  (``--jobs N``), with result caching and a JSON run manifest plus
  ``trace.json``/``metrics.json`` under ``benchmarks/output/``; ``--cold``
  forces a full re-run.  Prints a failure summary and exits nonzero when
  any experiment's final status is not ``ok``/``cache_hit``.
- ``chaos``            -- run the suite under a seeded fault schedule and
  assert the resilience invariants (see docs/RESILIENCE.md).
- ``trace --run``      -- render the observability report of the last
  ``run-all``: top-N self-time spans and the per-experiment phase
  breakdown (see docs/OBSERVABILITY.md).
- ``regress A B``      -- the perf gate: diff two runs' metrics/manifests
  and exit nonzero past a threshold.
- ``bench-resolve``    -- the resolver microbenchmark: cold sweep vs cold
  worklist vs warm-start delta vs cache hit, as deterministic work-counter
  deltas written to ``BENCH_resolve.json`` next to the run manifest.
- ``bench-guests``     -- the fleet-simulation microbenchmark: boot and
  serve whole guest fleets per kernel policy through the unified guest
  runtime, as deterministic work-counter deltas (plus TickClock
  throughput) written to ``BENCH_guests.json``.
- ``fleet-serve``      -- one traffic-driven serving run: a seeded
  open-loop trace (diurnal/poisson/bursty) routed across warm pools with
  cold boots and capacity queueing, printing the latency/cold-start
  report and writing its manifest to ``serve_report.json`` (see
  docs/SERVING.md).
- ``bench-serve``      -- the serving microbenchmark: the canonical
  100k-request diurnal trace per warm-pool policy, run twice each for
  the determinism contract, written to ``BENCH_serve.json``.
- ``derive``           -- trace-driven specialization: record an app's
  usage (syscalls, config options, facilities), derive a minimal config
  from the observation and diff it against the curated one (see
  docs/SPECIALIZATION.md).
- ``bench-derive``     -- the specialization microbenchmark: the full
  record/derive/audit loop for every top-20 app, run twice each, as
  deterministic work-counter deltas written to ``BENCH_derive.json``;
  ``--check`` enforces full coverage, the 1.5x option-ratio ceiling and
  rerun/--jobs digest equality.
- ``chaos-serve``      -- the serving chaos gate: the canonical trace
  under a seeded guest-fault schedule (crash/hang/boot-fail/arrival),
  asserting faulted reruns and ``--jobs`` sweeps are byte-identical,
  an empty plane is invisible, and the fleet recovers instead of
  erroring (see docs/RESILIENCE.md).
- ``apps``             -- list the top-20 application registry.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro._version import __version__


def _cmd_apps(args: argparse.Namespace) -> int:
    from repro.apps.registry import top20_in_popularity_order

    print(f"{'name':<15} {'downloads(B)':>12} {'options':>8}  description")
    for app in top20_in_popularity_order():
        print(
            f"{app.name:<15} {app.downloads_billions:>12.1f} "
            f"{app.option_count:>8}  {app.description}"
        )
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    from repro.apps.registry import get_app
    from repro.core.lupine import LupineBuilder
    from repro.core.variants import Variant

    app = get_app(args.app)
    builder = LupineBuilder(variant=Variant(args.variant))
    unikernel = builder.build_for_app(app)
    print(f"built {unikernel.build.config.name}")
    print(f"  kernel image : {unikernel.kernel_image_mb:.2f} MB "
          f"({len(unikernel.build.config.enabled)} options, "
          f"kml={'yes' if unikernel.build.kml else 'no'})")
    print(f"  rootfs (ext2): {unikernel.rootfs_size_mb:.2f} MB "
          f"({unikernel.rootfs.inode_count} inodes)")
    print(f"  min memory   : {unikernel.min_memory_mb()} MB")
    return 0


def _cmd_boot(args: argparse.Namespace) -> int:
    from repro.apps.registry import get_app
    from repro.core.lupine import LupineBuilder
    from repro.core.variants import Variant

    app = get_app(args.app)
    unikernel = LupineBuilder(variant=Variant(args.variant)).build_for_app(app)
    guest = unikernel.boot()
    print(guest.boot_report.breakdown())
    for line in guest.console:
        print(f"console| {line}")
    return 0 if guest.ran_successfully else 1


def _cmd_config(args: argparse.Namespace) -> int:
    from repro.apps.registry import get_app
    from repro.core.specialization import app_config, app_option_requirements
    from repro.kconfig.parser import format_config_fragment

    app = get_app(args.app)
    extra = sorted(app_option_requirements(app))
    print(f"# lupine-{app.name}: lupine-base + {len(extra)} options")
    for option in extra:
        print(f"#   + CONFIG_{option}")
    if args.full:
        config = app_config(app)
        values = {name: config.value(name) for name in config.enabled}
        sys.stdout.write(format_config_fragment(values))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.run or args.app is None:
        return _cmd_trace_run(args)
    from repro.apps.registry import get_app
    from repro.core.manifest import derive_options
    from repro.core.tracing import manifest_from_app_trace, trace_app_run

    app = get_app(args.app)
    trace = trace_app_run(app)
    print(f"# traced {app.name}: {len(trace)} syscalls, "
          f"{len(trace.distinct_syscalls)} distinct")
    if args.counts:
        for name, count in sorted(trace.counts.items(),
                                  key=lambda item: -item[1]):
            print(f"{count:>6}  {name}")
    for facility in trace.facilities:
        print(f"facility: {facility}")
    options = derive_options(manifest_from_app_trace(app))
    print("derived options: " + (", ".join(sorted(options)) or "(none)"))
    return 0


def _cmd_trace_run(args: argparse.Namespace) -> int:
    """Render the observability report of a ``run-all`` invocation."""
    import pathlib

    from repro.harness.runner import default_output_dir
    from repro.observe.export import (
        METRICS_NAME,
        TRACE_NAME,
        render_trace_report,
    )

    output_dir = (
        pathlib.Path(args.output_dir)
        if args.output_dir is not None else default_output_dir()
    )
    trace_path = output_dir / TRACE_NAME
    if not trace_path.is_file():
        print(
            f"no {TRACE_NAME} under {output_dir}; run "
            "'repro-lupine run-all' first",
            file=sys.stderr,
        )
        return 2
    print(render_trace_report(
        trace_path,
        metrics_path=output_dir / METRICS_NAME,
        top_n=args.top,
    ))
    return 0


def _cmd_regress(args: argparse.Namespace) -> int:
    from repro.observe import regress

    argv = [args.baseline, args.current,
            "--threshold", str(args.threshold), "--min-ms", str(args.min_ms)]
    if args.no_timings:
        argv.append("--no-timings")
    return regress.main(argv)


def _cmd_bench_resolve(args: argparse.Namespace) -> int:
    import pathlib

    from repro.harness.runner import default_output_dir
    from repro.kconfig.bench import (
        BENCH_RESOLVE_NAME,
        check_result,
        render_summary,
        run_bench,
        write_result,
    )

    result = run_bench()
    output_dir = (
        pathlib.Path(args.output_dir)
        if args.output_dir is not None else default_output_dir()
    )
    result_path = output_dir / BENCH_RESOLVE_NAME
    write_result(result, result_path)
    print(render_summary(result))
    print(f"written      : {result_path}")
    if args.snapshot is not None:
        snapshot_path = pathlib.Path(args.snapshot)
        write_result(result, snapshot_path)
        print(f"snapshot     : {snapshot_path}")
    if args.check:
        failures = check_result(result)
        for failure in failures:
            print(f"CHECK FAILED : {failure}", file=sys.stderr)
        if failures:
            return 1
        print("check        : ok (warm-start and cache criteria hold)")
    return 0


def _cmd_bench_guests(args: argparse.Namespace) -> int:
    import pathlib

    from repro.harness.runner import default_output_dir
    from repro.simcore.bench import (
        BENCH_GUESTS_NAME,
        DEFAULT_SHARD_JOBS,
        check_result,
        render_summary,
        run_bench,
        write_result,
    )

    jobs = DEFAULT_SHARD_JOBS if args.jobs is None else args.jobs
    result = run_bench(global_loop=args.global_loop, jobs=jobs)
    output_dir = (
        pathlib.Path(args.output_dir)
        if args.output_dir is not None else default_output_dir()
    )
    result_path = output_dir / BENCH_GUESTS_NAME
    write_result(result, result_path)
    print(render_summary(result))
    print(f"written      : {result_path}")
    if args.snapshot is not None:
        snapshot_path = pathlib.Path(args.snapshot)
        write_result(result, snapshot_path)
        print(f"snapshot     : {snapshot_path}")
    if args.check:
        failures = check_result(result)
        for failure in failures:
            print(f"CHECK FAILED : {failure}", file=sys.stderr)
        if failures:
            return 1
        print("check        : ok (fleet scale and kernel-sharing "
              "criteria hold)")
    return 0


def _cmd_fleet_serve(args: argparse.Namespace) -> int:
    import pathlib

    from repro.harness.runner import default_output_dir
    from repro.traffic.arrivals import bursty_trace, poisson_trace
    from repro.traffic.bench import canonical_trace
    from repro.traffic.policy import named_policy, policy_names
    from repro.traffic.serve import (
        SERVE_REPORT_NAME,
        ServeSpec,
        run_serving_many,
    )

    if args.trace == "diurnal":
        trace = canonical_trace(requests=args.requests)
        if args.mean_rps is not None:
            import dataclasses

            trace = dataclasses.replace(trace, mean_rps=args.mean_rps)
    elif args.trace == "poisson":
        trace = poisson_trace(requests=args.requests,
                              mean_rps=args.mean_rps or 1000)
    else:
        rps = args.mean_rps or 1000
        trace = bursty_trace(requests=args.requests,
                             on_rps=4 * rps, off_rps=max(rps / 4, 1.0))
    overrides = {}
    if args.guests is not None:
        overrides["max_total"] = args.guests
    if args.idle_timeout is not None:
        overrides["idle_timeout_s"] = (
            None if args.idle_timeout <= 0 else args.idle_timeout
        )
    # ``--policy all``: a policy sweep of whole runs, fanned out across
    # worker processes by --jobs (run-level parallelism; a single run
    # never shards -- see docs/SERVING.md).
    selected = (list(policy_names()) if args.policy == "all"
                else [args.policy])
    specs = []
    for name in selected:
        policy = named_policy(name)
        if overrides:
            policy = policy.with_overrides(**overrides)
        specs.append(ServeSpec(trace=trace, policy=policy, seed=args.seed,
                               record_usage=args.record_usage))
    if args.chaos:
        from repro import faults
        from repro.traffic.chaos import default_serving_schedule

        with faults.activated(default_serving_schedule(args.chaos_seed)):
            reports = run_serving_many(specs, jobs=args.jobs)
    else:
        reports = run_serving_many(specs, jobs=args.jobs)
    output_dir = (
        pathlib.Path(args.output_dir)
        if args.output_dir is not None else default_output_dir()
    )
    output_dir.mkdir(parents=True, exist_ok=True)
    import json

    for name, report in zip(selected, reports):
        print(report.render())
        report_name = (
            SERVE_REPORT_NAME if len(selected) == 1
            else f"serve_report.{name}.json"
        )
        report_path = output_dir / report_name
        report_path.write_text(
            json.dumps(report.manifest(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"report       : {report_path}")
        print(f"digest       : sha256 {report.manifest_digest}")
        if args.record_usage and report.usage_by_app:
            from repro.kconfig.derive import usage_option_requirements

            print("recorded usage (per app: calls -> derived options):")
            for app_name, trace in report.usage_by_app.items():
                options = sorted(usage_option_requirements(trace))
                print(f"  {app_name:<12} {trace.call_count:>8} calls, "
                      f"{len(trace.syscalls):>2} syscalls -> "
                      f"{', '.join(options) if options else '(base only)'}")
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    import pathlib

    from repro.harness.runner import default_output_dir
    from repro.traffic.bench import (
        BENCH_SERVE_NAME,
        check_result,
        render_summary,
        run_bench,
        write_result,
    )

    result = run_bench()
    output_dir = (
        pathlib.Path(args.output_dir)
        if args.output_dir is not None else default_output_dir()
    )
    result_path = output_dir / BENCH_SERVE_NAME
    write_result(result, result_path)
    print(render_summary(result))
    print(f"written      : {result_path}")
    if args.snapshot is not None:
        snapshot_path = pathlib.Path(args.snapshot)
        write_result(result, snapshot_path)
        print(f"snapshot     : {snapshot_path}")
    if args.check:
        failures = check_result(result)
        for failure in failures:
            print(f"CHECK FAILED : {failure}", file=sys.stderr)
        if failures:
            return 1
        print("check        : ok (determinism, churn scale, and "
              "warm-pool tail criteria hold)")
    return 0


def _cmd_derive(args: argparse.Namespace) -> int:
    from repro.apps.registry import get_app, top20_in_popularity_order
    from repro.core.specialization import app_option_requirements
    from repro.core.tracing import usage_trace_for_app
    from repro.kconfig.derive import derivation_report

    apps = ([get_app(args.app)] if args.app is not None
            else list(top20_in_popularity_order()))
    for app in apps:
        trace = usage_trace_for_app(app)
        report = derivation_report(trace)
        curated = app_option_requirements(app)
        print(f"{app.name}: {trace.call_count} recorded calls, "
              f"{len(trace.syscalls)} distinct syscalls, "
              f"{len(report.extras)} options beyond lupine-base")
        for option in report.extras:
            marker = "" if option in curated else "  (observed, not curated)"
            print(f"  {option}{marker}")
        missed = sorted(curated - set(report.extras))
        for option in missed:
            print(f"  {option}  (curated, never exercised)")
        print(f"  options      : {report.option_count} enabled "
              f"(covers recorded usage: {'yes' if report.covers else 'NO'})")
        print(f"  usage digest : sha256 {report.usage_digest[:16]}")
        print(f"  config digest: sha256 {report.config_digest[:16]}")
        if args.defconfig:
            for option in report.request:
                print(f"CONFIG_{option}=y")
    return 0


def _cmd_bench_derive(args: argparse.Namespace) -> int:
    import pathlib

    from repro.core.bench import (
        BENCH_DERIVE_NAME,
        check_result,
        render_summary,
        run_bench,
        write_result,
    )
    from repro.harness.runner import default_output_dir

    result = run_bench(jobs=args.jobs)
    output_dir = (
        pathlib.Path(args.output_dir)
        if args.output_dir is not None else default_output_dir()
    )
    result_path = output_dir / BENCH_DERIVE_NAME
    write_result(result, result_path)
    print(render_summary(result))
    print(f"written      : {result_path}")
    if args.snapshot is not None:
        snapshot_path = pathlib.Path(args.snapshot)
        write_result(result, snapshot_path)
        print(f"snapshot     : {snapshot_path}")
    if args.check:
        failures = check_result(result)
        for failure in failures:
            print(f"CHECK FAILED : {failure}", file=sys.stderr)
        if failures:
            return 1
        print("check        : ok (full coverage, bounded option ratio, "
              "and rerun digests hold)")
    return 0


def _resolve_config_argument(name: str):
    from repro.apps.registry import get_app
    from repro.core.specialization import (
        app_config,
        derived_app_config,
        lupine_general_config,
    )
    from repro.kconfig.configs import lupine_base_config, microvm_config

    if name == "microvm":
        return microvm_config()
    if name in ("lupine-base", "base"):
        return lupine_base_config()
    if name in ("lupine-general", "general"):
        return lupine_general_config()
    if name.startswith("derived:"):
        return derived_app_config(name.partition(":")[2])
    return app_config(get_app(name))


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.kconfig.diff import diff_configs

    left = _resolve_config_argument(args.left)
    right = _resolve_config_argument(args.right)
    diff = diff_configs(left, right)
    for line in diff.summary_lines(show_options=args.options):
        print(line)
    return 0


def _cmd_selfcheck(args: argparse.Namespace) -> int:
    from repro.selfcheck import all_passed, run_selfcheck

    results = run_selfcheck()
    for name, passed, detail in results:
        status = "ok " if passed else "FAIL"
        print(f"[{status}] {name}: {detail}")
    return 0 if all_passed(results) else 1


def _cmd_dmesg(args: argparse.Namespace) -> int:
    from repro.apps.registry import get_app
    from repro.core.lupine import LupineBuilder
    from repro.core.variants import Variant

    unikernel = LupineBuilder(variant=Variant(args.variant)).build_for_app(
        get_app(args.app)
    )
    print(unikernel.boot().dmesg())
    return 0


def _cmd_lmbench(args: argparse.Namespace) -> int:
    from repro.experiments import table5_lmbench
    from repro.metrics.reporting import render_table

    print(render_table(table5_lmbench.table()))
    return 0


def _cmd_footprint(args: argparse.Namespace) -> int:
    from repro.apps.registry import get_app
    from repro.core.lupine import LupineBuilder
    from repro.core.variants import Variant

    app = get_app(args.app)
    unikernel = LupineBuilder(variant=Variant(args.variant)).build_for_app(app)
    print(f"{unikernel.build.config.name}: "
          f"{unikernel.min_memory_mb()} MB minimum")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.harness import all_experiments

    registry = all_experiments()
    names = list(registry) if args.id == "all" else [args.id]
    for name in names:
        experiment = registry.get(name)
        if experiment is None:
            print(f"unknown experiment {name!r}; known: "
                  f"{', '.join(registry)} or 'all'", file=sys.stderr)
            return 2
        print(experiment.artifact().text)
        print()
    return 0


def _cmd_run_all(args: argparse.Namespace) -> int:
    from repro.harness import run_experiments
    from repro.metrics.reporting import Table, render_table

    names = args.only.split(",") if args.only else None
    try:
        run = run_experiments(
            names=names,
            jobs=args.jobs,
            output_dir=args.output_dir,
            force=args.cold,
        )
    except KeyError as error:
        # str(KeyError) wraps the message in quotes; print the bare text.
        print(error.args[0] if error.args else str(error), file=sys.stderr)
        return 2

    telemetry = run.telemetry
    summary = Table(
        title=f"harness run: {len(telemetry.experiments)} experiments, "
              f"jobs={telemetry.jobs}",
        headers=["experiment", "status", "result cache", "wall ms"],
    )
    for record in telemetry.experiments:
        summary.add_row(
            record.name, record.status,
            "hit" if record.cache_hit else "miss",
            record.wall_ms,
        )
    print(render_table(summary))
    print()
    print(f"result cache : {telemetry.result_cache_hits} hits, "
          f"{telemetry.result_cache_misses} misses "
          f"({telemetry.result_cache_hit_rate:.0%} hit rate)")
    print(f"kernel builds: {telemetry.kernel_builds_performed} performed, "
          f"{telemetry.kernel_builds_reused} reused "
          f"({telemetry.kernel_cache_entries} cached)")
    print(f"total wall   : {telemetry.total_wall_ms:.0f} ms")
    if run.manifest_path is not None:
        print(f"manifest     : {run.manifest_path}")
    if run.trace_path is not None:
        print(f"trace        : {run.trace_path} "
              "(Chrome trace format; open in https://ui.perfetto.dev)")
    if run.metrics_path is not None:
        print(f"metrics      : {run.metrics_path}")
    failed = telemetry.failed_experiments
    if failed:
        print()
        print(f"FAILURES     : {len(failed)} of "
              f"{len(telemetry.experiments)} experiments did not complete",
              file=sys.stderr)
        for record in failed:
            print(f"  [{record.status}] {record.name} "
                  f"(attempt {record.attempts}): {record.error}",
                  file=sys.stderr)
        return 1
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import pathlib

    from repro.faults.chaos import run_chaos

    names = args.only.split(",") if args.only else None
    output_dir = (
        pathlib.Path(args.output_dir) if args.output_dir is not None else None
    )
    report = run_chaos(
        seed=args.seed,
        names=names,
        jobs=args.jobs,
        output_dir=output_dir,
        runs=args.runs,
    )
    print(report.render())
    return 0 if report.passed else 1


def _cmd_chaos_serve(args: argparse.Namespace) -> int:
    import pathlib

    from repro.traffic.chaos import run_chaos_serve

    report = run_chaos_serve(
        seed=args.seed,
        jobs=args.jobs,
        requests=args.requests,
        runs=args.runs,
        baseline_path=pathlib.Path(args.baseline),
    )
    print(report.render())
    return 0 if report.passed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lupine",
        description="Lupine Linux (EuroSys 2020) reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=__version__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    sub = subparsers.add_parser("apps", help="list the top-20 applications")
    sub.set_defaults(func=_cmd_apps)

    for name, func, needs_variant in (
        ("build", _cmd_build, True),
        ("boot", _cmd_boot, True),
    ):
        sub = subparsers.add_parser(name, help=f"{name} a Lupine unikernel")
        sub.add_argument("app", help="application name (see 'apps')")
        if needs_variant:
            sub.add_argument(
                "--variant", default="lupine",
                choices=[v.value for v in __import__(
                    "repro.core.variants", fromlist=["Variant"]
                ).Variant],
            )
        sub.set_defaults(func=func)

    sub = subparsers.add_parser("config", help="show a derived kernel config")
    sub.add_argument("app")
    sub.add_argument("--full", action="store_true",
                     help="print the full .config fragment")
    sub.set_defaults(func=_cmd_config)

    sub = subparsers.add_parser("experiment", help="run a paper experiment")
    sub.add_argument("id", help="fig3..fig12, table1/3/4/5, sec5, or 'all'")
    sub.set_defaults(func=_cmd_experiment)

    sub = subparsers.add_parser(
        "run-all",
        help="run all experiments through the parallel harness "
             "(result cache + run manifest under benchmarks/output/)",
    )
    sub.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="run up to N experiments concurrently")
    sub.add_argument("--only", default=None, metavar="ID[,ID...]",
                     help="comma-separated experiment ids (default: all)")
    sub.add_argument("--cold", action="store_true",
                     help="ignore cached results and re-run everything")
    sub.add_argument("--output-dir", default=None, metavar="DIR",
                     help="where outputs, the result cache and the run "
                          "manifest land (default: benchmarks/output/)")
    sub.set_defaults(func=_cmd_run_all)

    sub = subparsers.add_parser(
        "chaos",
        help="run the suite under a seeded fault schedule twice and "
             "assert the resilience invariants (definite statuses, "
             "manifest always written, same seed => identical artifacts)",
    )
    sub.add_argument("--seed", type=int, default=1234, metavar="N",
                     help="fault-schedule seed (default 1234)")
    sub.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="experiments run concurrently; byte-identity "
                          "across sub-runs is checked only at --jobs 1")
    sub.add_argument("--runs", type=int, default=2, metavar="N",
                     help="identical sub-runs to compare (default 2)")
    sub.add_argument("--only", default=None, metavar="ID[,ID...]",
                     help="comma-separated experiment ids (default: all)")
    sub.add_argument("--output-dir", default=None, metavar="DIR",
                     help="chaos scratch dir "
                          "(default: benchmarks/output/chaos/)")
    sub.set_defaults(func=_cmd_chaos)

    sub = subparsers.add_parser(
        "trace",
        help="trace an app (manifest options) or, with --run/no app, "
             "render the observability report of the last run-all",
    )
    sub.add_argument("app", nargs="?", default=None,
                     help="application name; omit to report on a run")
    sub.add_argument("--counts", action="store_true",
                     help="print per-syscall counts")
    sub.add_argument("--run", action="store_true",
                     help="render the phase/self-time report from "
                          "trace.json + metrics.json")
    sub.add_argument("--top", type=int, default=15, metavar="N",
                     help="rows in the self-time table (default 15)")
    sub.add_argument("--output-dir", default=None, metavar="DIR",
                     help="run output dir (default: benchmarks/output/)")
    sub.set_defaults(func=_cmd_trace)

    sub = subparsers.add_parser(
        "regress",
        help="diff two runs' metrics/manifests; exit 1 past the threshold",
    )
    sub.add_argument("baseline", help="baseline run dir or metrics.json")
    sub.add_argument("current", help="current run dir or metrics.json")
    sub.add_argument("--threshold", type=float, default=0.10)
    sub.add_argument("--min-ms", type=float, default=5.0)
    sub.add_argument("--no-timings", action="store_true")
    sub.set_defaults(func=_cmd_regress)

    sub = subparsers.add_parser(
        "bench-resolve",
        help="kconfig resolver microbenchmark (deterministic counter "
             "deltas; writes BENCH_resolve.json)",
    )
    sub.add_argument("--check", action="store_true",
                     help="exit 1 unless warm-start visits >=10x fewer "
                          "options than cold sweeps and cache hits do no "
                          "resolution work")
    sub.add_argument("--snapshot", default=None, metavar="PATH",
                     help="also write the result JSON to PATH (e.g. "
                          "benchmarks/baseline/BENCH_resolve.json)")
    sub.add_argument("--output-dir", default=None, metavar="DIR",
                     help="where BENCH_resolve.json lands "
                          "(default: benchmarks/output/)")
    sub.set_defaults(func=_cmd_bench_resolve)

    sub = subparsers.add_parser(
        "bench-guests",
        help="fleet-simulation microbenchmark: boot+serve whole guest "
             "fleets per kernel policy (deterministic counter deltas; "
             "writes BENCH_guests.json)",
    )
    sub.add_argument("--check", action="store_true",
                     help="exit 1 unless the general fleet boots >= 1000 "
                          "monitor-checked guests on exactly one shared "
                          "kernel, the per-app fleet diversifies, the "
                          "cohort and sharded 10k-guest fleets reproduce "
                          "their single-process oracles' manifest digests "
                          "at the throughput floor, and (with "
                          "--global-loop) the global event loop "
                          "reproduces the sequential oracle's manifest "
                          "digest")
    sub.add_argument("--global-loop", action="store_true",
                     help="also run the general fleet as one EventCore "
                          "event loop (guests interleaved in virtual-time "
                          "order) and record its guests/sec + manifest "
                          "digest")
    sub.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="worker processes for the sharded 10k-guest "
                          "fleet scenario (default 2; the merged manifest "
                          "digest is identical for any N)")
    sub.add_argument("--snapshot", default=None, metavar="PATH",
                     help="also write the result JSON to PATH (e.g. "
                          "benchmarks/baseline/BENCH_guests.json)")
    sub.add_argument("--output-dir", default=None, metavar="DIR",
                     help="where BENCH_guests.json lands "
                          "(default: benchmarks/output/)")
    sub.set_defaults(func=_cmd_bench_guests)

    sub = subparsers.add_parser(
        "fleet-serve",
        help="run one traffic-driven serving trace across the fleet "
             "(open-loop arrivals, warm-pool routing, cold boots; "
             "writes serve_report.json)",
    )
    sub.add_argument("--policy", default="scale-to-zero",
                     choices=list(__import__(
                         "repro.traffic.policy", fromlist=["policy_names"]
                     ).policy_names()) + ["all"],
                     help="warm-pool policy preset (default scale-to-zero; "
                          "'all' sweeps every preset as independent runs)")
    sub.add_argument("--trace", default="diurnal",
                     choices=["diurnal", "poisson", "bursty"],
                     help="arrival process (default: the canonical "
                          "diurnal trace)")
    sub.add_argument("--requests", type=int, default=100_000, metavar="N",
                     help="requests in the trace (default 100000)")
    sub.add_argument("--mean-rps", type=float, default=None, metavar="R",
                     help="mean arrival rate (default: canonical trace's)")
    sub.add_argument("--seed", type=int, default=2020, metavar="N",
                     help="arrival/app-mix seed (default 2020)")
    sub.add_argument("--guests", type=int, default=None, metavar="N",
                     help="fleet capacity ceiling (policy max_total "
                          "override, default 1000)")
    sub.add_argument("--idle-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="scale-to-zero idle timeout override "
                          "(<= 0: keep warm guests alive forever)")
    sub.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes for --policy all sweeps "
                          "(whole runs fan out; a single run never "
                          "shards -- see docs/SERVING.md)")
    sub.add_argument("--output-dir", default=None, metavar="DIR",
                     help="where serve_report.json lands (per-policy "
                          "serve_report.<policy>.json for --policy all; "
                          "default: benchmarks/output/)")
    sub.add_argument("--chaos", action="store_true",
                     help="serve under the stock guest-fault schedule "
                          "(crash/hang/boot-fail/arrival; the report "
                          "gains nonzero availability counters)")
    sub.add_argument("--chaos-seed", type=int, default=77, metavar="N",
                     help="fault-schedule seed for --chaos (default 77)")
    sub.add_argument("--record-usage", action="store_true",
                     help="attach a usage recorder to every guest; the "
                          "report gains a per-app usage section feeding "
                          "trace-driven derivation (see "
                          "docs/SPECIALIZATION.md)")
    sub.set_defaults(func=_cmd_fleet_serve)

    sub = subparsers.add_parser(
        "bench-serve",
        help="traffic-serving microbenchmark: the canonical 100k-request "
             "diurnal trace per warm-pool policy, twice each "
             "(deterministic counter deltas; writes BENCH_serve.json)",
    )
    sub.add_argument("--check", action="store_true",
                     help="exit 1 unless both policies reproduce their "
                          "manifest digests byte-identically, "
                          "scale-to-zero cold-boots >= 1000 guests with "
                          "a nonzero cold-start fraction, and the fixed "
                          "pool buys back the latency tail")
    sub.add_argument("--snapshot", default=None, metavar="PATH",
                     help="also write the result JSON to PATH (e.g. "
                          "benchmarks/baseline/BENCH_serve.json)")
    sub.add_argument("--output-dir", default=None, metavar="DIR",
                     help="where BENCH_serve.json lands "
                          "(default: benchmarks/output/)")
    sub.set_defaults(func=_cmd_bench_serve)

    sub = subparsers.add_parser(
        "derive",
        help="derive an app config from its recorded usage trace and "
             "diff it against the curated one (see "
             "docs/SPECIALIZATION.md)",
    )
    sub.add_argument("--app", default=None, metavar="APP",
                     help="derive for one app (default: all top-20)")
    sub.add_argument("--defconfig", action="store_true",
                     help="also print the minimized request as "
                          "CONFIG_*=y defconfig lines")
    sub.set_defaults(func=_cmd_derive)

    sub = subparsers.add_parser(
        "bench-derive",
        help="trace-driven specialization microbenchmark: record + "
             "derive + audit for every top-20 app, twice each "
             "(deterministic work deltas; writes BENCH_derive.json)",
    )
    sub.add_argument("--check", action="store_true",
                     help="exit 1 unless every derived config covers "
                          "100%% of its recorded usage, stays within "
                          "1.5x the curated option count, and both "
                          "reruns reproduce their digests")
    sub.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes (apps fan out; hermetic "
                          "shards keep the document byte-identical "
                          "for any N)")
    sub.add_argument("--snapshot", default=None, metavar="PATH",
                     help="also write the result JSON to PATH (e.g. "
                          "benchmarks/baseline/BENCH_derive.json)")
    sub.add_argument("--output-dir", default=None, metavar="DIR",
                     help="where BENCH_derive.json lands "
                          "(default: benchmarks/output/)")
    sub.set_defaults(func=_cmd_bench_derive)

    sub = subparsers.add_parser(
        "chaos-serve",
        help="run the serving bench under a seeded guest-fault schedule "
             "and assert the serving resilience invariants (faulted "
             "reruns and --jobs sweeps byte-identical, empty plane "
             "invisible, fleet recovers instead of erroring)",
    )
    sub.add_argument("--seed", type=int, default=77, metavar="N",
                     help="serving fault-schedule seed (default 77)")
    sub.add_argument("--jobs", type=int, default=2, metavar="N",
                     help="worker processes for the policy-sweep leg "
                          "(default 2); its digests must match the "
                          "sequential runs at any value")
    sub.add_argument("--runs", type=int, default=2, metavar="N",
                     help="identical faulted runs to compare per policy "
                          "(default 2)")
    sub.add_argument("--requests", type=int, default=None, metavar="N",
                     help="shrink the trace (default: the canonical "
                          "100000; custom sizes judge the zero-fault leg "
                          "against a plain run instead of the baseline)")
    sub.add_argument("--baseline",
                     default="benchmarks/baseline/BENCH_serve.json",
                     metavar="PATH",
                     help="BENCH_serve.json whose digests the zero-fault "
                          "canonical runs must reproduce (default: "
                          "benchmarks/baseline/BENCH_serve.json)")
    sub.set_defaults(func=_cmd_chaos_serve)

    sub = subparsers.add_parser(
        "diff",
        help="diff two kernel configs (microvm, lupine-base, "
             "lupine-general, or any app name)",
    )
    sub.add_argument("left")
    sub.add_argument("right")
    sub.add_argument("--options", action="store_true",
                     help="list individual option names")
    sub.set_defaults(func=_cmd_diff)

    sub = subparsers.add_parser(
        "selfcheck", help="verify the paper-exact structural invariants"
    )
    sub.set_defaults(func=_cmd_selfcheck)

    sub = subparsers.add_parser(
        "dmesg", help="boot an app and print the kernel console"
    )
    sub.add_argument("app")
    sub.add_argument("--variant", default="lupine")
    sub.set_defaults(func=_cmd_dmesg)

    sub = subparsers.add_parser(
        "lmbench", help="run the full lmbench suite (Table 5)"
    )
    sub.set_defaults(func=_cmd_lmbench)

    sub = subparsers.add_parser(
        "footprint", help="measure an app's minimum guest memory"
    )
    sub.add_argument("app")
    sub.add_argument("--variant", default="lupine")
    sub.set_defaults(func=_cmd_footprint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
