"""The experiment runner: concurrent execution, caching, telemetry.

``run_experiments`` executes a set of registered experiments:

- independent experiments run concurrently on a thread pool (``jobs``);
  results are merged in registry order, so output is deterministic and
  identical for ``--jobs 1`` and ``--jobs 4``;
- kernel builds inside experiments all hit the process-wide
  :data:`~repro.core.buildcache.BUILD_CACHE`, so the fleet of variants the
  paper's evaluation needs is built once per process, not once per figure;
- finished results land in an on-disk :class:`ResultCache` keyed on each
  experiment's inputs fingerprint -- a warm re-run with unchanged inputs
  executes nothing and reproduces byte-identical artifacts;
- every run emits a JSON run manifest (``run_manifest.json``) with
  per-experiment wall time, result-cache hits/misses and kernel builds
  performed vs. reused, plus the observability artifacts ``trace.json``
  (Chrome trace-event spans for every phase of the run; see
  ``docs/OBSERVABILITY.md``) and ``metrics.json`` (the process metrics
  snapshot).

Invariants:

- **Merge-order determinism.** Results, artifacts and manifest entries are
  merged in *selection* order (registry order for named runs), never in
  completion order: a ``--jobs 4`` run is byte-identical to ``--jobs 1``.
- **Warm-run purity.** A result-cache hit must not execute experiment
  code, perform kernel builds, or consult the kernel build cache; it only
  decodes the stored result.  (``test_harness.py`` pins this.)
- **Codec normalization.** Cold results pass through
  ``decode(encode(...))`` before being returned, so cold and warm runs
  hand consumers structurally identical objects.
- **Span containment.** Every span the runner emits for one experiment is
  a descendant of that experiment's ``experiment:<name>`` span; the trace
  exporter's per-experiment breakdown depends on this.
"""

from __future__ import annotations

import concurrent.futures
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.buildcache import BUILD_CACHE
from repro.harness.codec import decode, encode
from repro.harness.registry import Experiment, all_experiments
from repro.harness.resultcache import CachedResult, ResultCache
from repro.metrics.telemetry import ExperimentTelemetry, RunTelemetry
from repro.observe import METRICS, TRACER, span
from repro.observe.export import write_run_artifacts
from repro.observe.metrics import DEFAULT_MS_BUCKETS

#: Manifest filename inside the output directory.
MANIFEST_NAME = "run_manifest.json"


def default_output_dir() -> pathlib.Path:
    """``<repo>/benchmarks/output``, anchored on the installed package."""
    import repro

    return (
        pathlib.Path(repro.__file__).resolve().parents[2]
        / "benchmarks" / "output"
    )


def default_cache_dir(output_dir: Optional[pathlib.Path] = None) -> pathlib.Path:
    """The result cache lives next to the rendered outputs."""
    base = output_dir if output_dir is not None else default_output_dir()
    return pathlib.Path(base) / "result-cache"


@dataclass
class HarnessRun:
    """Everything one ``run_experiments`` call produced."""

    results: Dict[str, Any] = field(default_factory=dict)
    artifacts: Dict[str, str] = field(default_factory=dict)
    telemetry: RunTelemetry = field(default_factory=lambda: RunTelemetry(jobs=1))
    output_paths: Dict[str, pathlib.Path] = field(default_factory=dict)
    manifest_path: Optional[pathlib.Path] = None
    trace_path: Optional[pathlib.Path] = None
    metrics_path: Optional[pathlib.Path] = None


@dataclass(frozen=True)
class _Outcome:
    telemetry: ExperimentTelemetry
    result: Any
    artifact_text: str
    artifact_dat: Optional[str]


def _execute_one(
    experiment: Experiment, cache: Optional[ResultCache], force: bool
) -> _Outcome:
    started = time.perf_counter()
    with span(f"experiment:{experiment.name}", category="harness",
              experiment=experiment.name) as record:
        with span("fingerprint", category="harness"):
            fingerprint = experiment.fingerprint()
        if cache is not None and not force:
            with span("cache-lookup", category="harness"):
                entry = cache.load(experiment.name, fingerprint)
            if entry is not None:
                METRICS.counter("harness.result_cache.hits").inc()
                record.set_attr("cache_hit", True)
                wall_ms = (time.perf_counter() - started) * 1000.0
                METRICS.histogram(
                    "harness.experiment.wall_ms", DEFAULT_MS_BUCKETS
                ).observe(wall_ms)
                return _Outcome(
                    telemetry=ExperimentTelemetry(
                        name=experiment.name,
                        fingerprint=fingerprint,
                        cache_hit=True,
                        wall_ms=wall_ms,
                    ),
                    result=decode(entry.result),
                    artifact_text=entry.artifact_text,
                    artifact_dat=entry.artifact_dat,
                )
        METRICS.counter("harness.result_cache.misses").inc()
        record.set_attr("cache_hit", False)
        with span("execute", category="harness"):
            result = experiment.run()
        with span("render-artifact", category="harness"):
            artifact = experiment.artifact()
            dat_text: Optional[str] = None
            if artifact.figure is not None:
                from repro.metrics.dataexport import figure_to_dat

                dat_text = figure_to_dat(artifact.figure)
        with span("encode", category="harness"):
            encoded = encode(result)
        if cache is not None:
            with span("cache-store", category="harness"):
                cache.store(
                    CachedResult(
                        name=experiment.name,
                        fingerprint=fingerprint,
                        result=encoded,
                        artifact_text=artifact.text,
                        artifact_dat=dat_text,
                    )
                )
        wall_ms = (time.perf_counter() - started) * 1000.0
        METRICS.histogram(
            "harness.experiment.wall_ms", DEFAULT_MS_BUCKETS
        ).observe(wall_ms)
        return _Outcome(
            telemetry=ExperimentTelemetry(
                name=experiment.name,
                fingerprint=fingerprint,
                cache_hit=False,
                wall_ms=wall_ms,
            ),
            # Normalize through the codec so cold and warm runs hand consumers
            # byte-for-byte identical structures.
            result=decode(encoded),
            artifact_text=artifact.text,
            artifact_dat=dat_text,
        )


def run_experiments(
    names: Optional[Sequence[str]] = None,
    jobs: int = 1,
    experiments: Optional[Sequence[Experiment]] = None,
    output_dir: Optional[pathlib.Path] = None,
    cache_dir: Optional[pathlib.Path] = None,
    force: bool = False,
    write_outputs: bool = True,
    use_result_cache: bool = True,
) -> HarnessRun:
    """Run experiments through the harness (see module docstring).

    ``names`` selects registered experiments (None => all, registry
    order); ``experiments`` bypasses the registry entirely (tests,
    synthetic experiments).  ``force`` ignores cached results but still
    refreshes the cache; ``use_result_cache=False`` disables the result
    cache in both directions.
    """
    if experiments is None:
        registry = all_experiments()
        if names is None:
            selected = list(registry.values())
        else:
            unknown = [name for name in names if name not in registry]
            if unknown:
                raise KeyError(
                    f"unknown experiments {unknown!r}; known: "
                    f"{', '.join(registry)}"
                )
            selected = [registry[name] for name in names]
    else:
        selected = list(experiments)

    if output_dir is None:
        output_dir = default_output_dir()
    output_dir = pathlib.Path(output_dir)
    cache: Optional[ResultCache] = None
    if use_result_cache:
        if cache_dir is None:
            cache_dir = default_cache_dir(output_dir)
        cache = ResultCache(pathlib.Path(cache_dir))

    jobs = max(1, int(jobs))
    METRICS.gauge("harness.jobs").set(jobs)
    # Pre-register the cost counters so a fully-warm run reports them as
    # explicit zeros rather than omitting them: the regression gate
    # compares baseline-side counters, and "0 misses" is the very claim a
    # warm-run baseline exists to enforce.
    for counter_name in (
        "harness.result_cache.hits", "harness.result_cache.misses",
        "buildcache.hits", "buildcache.misses",
        "kbuild.builds", "kconfig.resolutions",
        "kconfig.resolve.cache_hits", "kconfig.resolve.cache_misses",
        "kconfig.resolve.visited_options", "kconfig.expr.evals",
    ):
        METRICS.counter(counter_name)
    build_stats_before = BUILD_CACHE.stats()
    trace_mark = TRACER.mark()
    run_started = time.perf_counter()

    with span("harness.run", category="harness",
              jobs=jobs, experiments=len(selected)):
        if jobs == 1:
            outcomes = [_execute_one(e, cache, force) for e in selected]
        else:
            with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
                futures = [
                    pool.submit(_execute_one, e, cache, force)
                    for e in selected
                ]
                # Futures are collected in submission (registry) order: the
                # merge is deterministic no matter which finishes first.
                outcomes = [future.result() for future in futures]

    build_stats_after = BUILD_CACHE.stats()
    telemetry = RunTelemetry(
        jobs=jobs,
        total_wall_ms=(time.perf_counter() - run_started) * 1000.0,
        experiments=[outcome.telemetry for outcome in outcomes],
        kernel_builds_performed=(
            build_stats_after.misses - build_stats_before.misses
        ),
        kernel_builds_reused=(
            build_stats_after.hits - build_stats_before.hits
        ),
        kernel_cache_entries=build_stats_after.entries,
    )

    run = HarnessRun(telemetry=telemetry)
    for experiment, outcome in zip(selected, outcomes):
        run.results[experiment.name] = outcome.result
        run.artifacts[experiment.name] = outcome.artifact_text
        if write_outputs:
            output_dir.mkdir(parents=True, exist_ok=True)
            path = output_dir / f"{experiment.output_stem}.txt"
            path.write_text(outcome.artifact_text + "\n", encoding="utf-8")
            run.output_paths[experiment.name] = path
            if outcome.artifact_dat is not None:
                (output_dir / f"{experiment.output_stem}.dat").write_text(
                    outcome.artifact_dat, encoding="utf-8"
                )
    if write_outputs:
        output_dir.mkdir(parents=True, exist_ok=True)
        manifest_path = output_dir / MANIFEST_NAME
        manifest_path.write_text(telemetry.to_json(), encoding="utf-8")
        run.manifest_path = manifest_path
        artifact_paths = write_run_artifacts(
            output_dir, TRACER.records_since(trace_mark), METRICS
        )
        run.trace_path = artifact_paths["trace"]
        run.metrics_path = artifact_paths["metrics"]
    return run
