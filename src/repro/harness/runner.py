"""The experiment runner: concurrent execution, caching, failure isolation.

``run_experiments`` executes a set of registered experiments:

- independent experiments run concurrently on a thread pool (``jobs``);
  results are merged in registry order, so output is deterministic and
  identical for ``--jobs 1`` and ``--jobs 4``;
- kernel builds inside experiments all hit the process-wide
  :data:`~repro.core.buildcache.BUILD_CACHE`, so the fleet of variants the
  paper's evaluation needs is built once per process, not once per figure;
- finished results land in an on-disk :class:`ResultCache` keyed on each
  experiment's inputs fingerprint -- a warm re-run with unchanged inputs
  executes nothing and reproduces byte-identical artifacts;
- an experiment that raises is *contained*: its exception becomes a
  structured outcome (``status="failed"``, the error text in the
  manifest), transient faults are retried under a bounded
  :class:`RetryPolicy` with deterministic backoff on the simulated clock,
  an injected hang or a blown per-experiment deadline is
  ``status="timed_out"`` -- and every other experiment's result still
  lands;
- every run emits a JSON run manifest (``run_manifest.json``,
  schema_version 2: per-experiment ``status``/``attempts``/``error``)
  plus the observability artifacts ``trace.json`` and ``metrics.json``
  -- *always*, even when experiments fail: a partial run lands a
  complete manifest.

Invariants:

- **Merge-order determinism.** Results, artifacts and manifest entries are
  merged in *selection* order (registry order for named runs), never in
  completion order: a ``--jobs 4`` run is byte-identical to ``--jobs 1``.
- **Warm-run purity.** A result-cache hit must not execute experiment
  code, perform kernel builds, or consult the kernel build cache; it only
  decodes the stored result.  (``test_harness.py`` pins this.)
- **Codec normalization.** Cold results pass through
  ``decode(encode(...))`` before being returned, so cold and warm runs
  hand consumers structurally identical objects.
- **Span containment.** Every span the runner emits for one experiment is
  a descendant of that experiment's ``experiment:<name>`` span; the trace
  exporter's per-experiment breakdown depends on this.
- **Failure isolation.** No exception raised inside one experiment's
  attempt loop escapes ``_execute_one``: selection errors (unknown
  names) still raise, but once execution starts, every experiment ends
  with a definite status and the manifest/trace/metrics always land.
- **Fault-free transparency.** With no fault plane installed and no
  failures, the emitted span structure, metrics and outputs are
  identical to a runner without the fault machinery: retry/status span
  attributes appear only on retried or failed experiments.
"""

from __future__ import annotations

import concurrent.futures
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import faults
from repro.core.atomicio import atomic_write_text
from repro.core.buildcache import BUILD_CACHE
from repro.faults import FaultHang
from repro.harness.codec import decode, encode
from repro.harness.registry import Experiment, all_experiments
from repro.harness.resultcache import CachedResult, ResultCache
from repro.metrics.telemetry import (
    ExperimentTelemetry,
    OK_STATUSES,
    RunTelemetry,
)
from repro.observe import METRICS, TRACER, span
from repro.simcore.context import current_clock
from repro.observe.export import write_run_artifacts
from repro.observe.metrics import DEFAULT_MS_BUCKETS

#: Manifest filename inside the output directory.
MANIFEST_NAME = "run_manifest.json"


def _now_ms() -> float:
    """Wall time off the tracer's host clock (perf_counter by default).

    Going through ``TRACER.clock`` instead of ``time.perf_counter`` lets
    the chaos harness install a deterministic :class:`TickClock` and get
    byte-identical manifests/metrics out of two identical runs.
    """
    return TRACER.clock.now_us() / 1000.0


def default_output_dir() -> pathlib.Path:
    """``<repo>/benchmarks/output``, anchored on the installed package."""
    import repro

    return (
        pathlib.Path(repro.__file__).resolve().parents[2]
        / "benchmarks" / "output"
    )


def default_cache_dir(output_dir: Optional[pathlib.Path] = None) -> pathlib.Path:
    """The result cache lives next to the rendered outputs."""
    base = output_dir if output_dir is not None else default_output_dir()
    return pathlib.Path(base) / "result-cache"


@dataclass(frozen=True)
class RetryPolicy:
    """How the runner handles a failing experiment attempt.

    Only errors carrying a truthy ``transient`` attribute (injected
    transient faults -- see :mod:`repro.faults`) are retried, up to
    ``max_attempts`` total attempts with a deterministic linear backoff
    of ``backoff_ms * attempt`` advanced on the *simulated* clock (no
    host sleeping; chaos runs stay fast and reproducible).  Any other
    exception is persistent and fails on the first attempt.

    ``deadline_ms`` bounds one experiment: when an attempt ends (by
    failure) with more than ``deadline_ms`` elapsed on either clock
    since the experiment started, the experiment is marked
    ``timed_out`` and not retried.  An injected :class:`FaultHang`
    (which advances the simulated clock past any useful deadline) is
    classified ``timed_out`` directly.  A genuinely hung thread cannot
    be preempted from Python -- the deadline is judged at attempt
    boundaries, which the simulators always reach.
    """

    max_attempts: int = 3
    backoff_ms: float = 50.0
    deadline_ms: Optional[float] = None


#: The default policy: bounded retries for transient faults, no deadline.
DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass
class HarnessRun:
    """Everything one ``run_experiments`` call produced."""

    results: Dict[str, Any] = field(default_factory=dict)
    artifacts: Dict[str, str] = field(default_factory=dict)
    telemetry: RunTelemetry = field(default_factory=lambda: RunTelemetry(jobs=1))
    output_paths: Dict[str, pathlib.Path] = field(default_factory=dict)
    manifest_path: Optional[pathlib.Path] = None
    trace_path: Optional[pathlib.Path] = None
    metrics_path: Optional[pathlib.Path] = None

    @property
    def failures(self) -> Dict[str, str]:
        """name -> error text for experiments that did not end ok."""
        return {
            entry.name: entry.error or entry.status
            for entry in self.telemetry.experiments if not entry.ok
        }

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass(frozen=True)
class _Outcome:
    telemetry: ExperimentTelemetry
    result: Any = None
    artifact_text: Optional[str] = None
    artifact_dat: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.telemetry.ok


def _attempt_one(
    experiment: Experiment,
    cache: Optional[ResultCache],
    force: bool,
    record: Any,
) -> Tuple[bool, str, Any, str, Optional[str]]:
    """One attempt: ``(cache_hit, fingerprint, result, text, dat)``."""
    with span("fingerprint", category="harness"):
        fingerprint = experiment.fingerprint()
    if cache is not None and not force:
        with span("cache-lookup", category="harness"):
            entry = cache.load(experiment.name, fingerprint)
        if entry is not None:
            METRICS.counter("harness.result_cache.hits").inc()
            record.set_attr("cache_hit", True)
            return (
                True, fingerprint, decode(entry.result),
                entry.artifact_text, entry.artifact_dat,
            )
    METRICS.counter("harness.result_cache.misses").inc()
    record.set_attr("cache_hit", False)
    with span("execute", category="harness"):
        with faults.fault_site("experiment.run"):
            result = experiment.run()
    with span("render-artifact", category="harness"):
        artifact = experiment.artifact()
        dat_text: Optional[str] = None
        if artifact.figure is not None:
            from repro.metrics.dataexport import figure_to_dat

            dat_text = figure_to_dat(artifact.figure)
    with span("encode", category="harness"):
        encoded = encode(result)
    if cache is not None:
        with span("cache-store", category="harness"):
            cache.store(
                CachedResult(
                    name=experiment.name,
                    fingerprint=fingerprint,
                    result=encoded,
                    artifact_text=artifact.text,
                    artifact_dat=dat_text,
                )
            )
    # Normalize through the codec so cold and warm runs hand consumers
    # byte-for-byte identical structures.
    return False, fingerprint, decode(encoded), artifact.text, dat_text


def _execute_one(
    experiment: Experiment,
    cache: Optional[ResultCache],
    force: bool,
    policy: RetryPolicy = DEFAULT_RETRY_POLICY,
) -> _Outcome:
    """Run one experiment under the retry policy; never raises.

    Every path ends with a definite status -- ``ok``/``cache_hit`` with a
    result, or ``failed``/``timed_out`` with the error captured in the
    telemetry entry.
    """
    started = _now_ms()
    fingerprint = ""
    cache_hit = False
    result: Any = None
    artifact_text: Optional[str] = None
    artifact_dat: Optional[str] = None
    status = "ok"
    error_text: Optional[str] = None
    attempts = 0
    with span(f"experiment:{experiment.name}", category="harness",
              experiment=experiment.name) as record:
        with faults.experiment_scope(experiment.name):
            sim_started = current_clock().now_ms
            while True:
                attempts += 1
                try:
                    (cache_hit, fingerprint, result, artifact_text,
                     artifact_dat) = _attempt_one(
                        experiment, cache, force, record)
                    status = "cache_hit" if cache_hit else "ok"
                    error_text = None
                    break
                except Exception as error:  # noqa: BLE001 -- failure isolation
                    error_text = f"{type(error).__name__}: {error}"
                    over_deadline = policy.deadline_ms is not None and (
                        (current_clock().now_ms - sim_started)
                        > policy.deadline_ms
                        or (_now_ms() - started) > policy.deadline_ms
                    )
                    if isinstance(error, FaultHang) or over_deadline:
                        status = "timed_out"
                        METRICS.counter("harness.timeouts").inc()
                        break
                    transient = bool(getattr(error, "transient", False))
                    if transient and attempts < policy.max_attempts:
                        backoff_ms = policy.backoff_ms * attempts
                        with span("harness.retry", category="harness",
                                  attempt=attempts, backoff_ms=backoff_ms):
                            current_clock().advance_ms(backoff_ms)
                        METRICS.counter("harness.retries").inc()
                        continue
                    status = "failed"
                    METRICS.counter("harness.failures").inc()
                    break
        # Keep fault-free spans byte-identical to the pre-fault-plane
        # runner: status/attempt attributes only on abnormal outcomes.
        if attempts > 1:
            record.set_attr("attempts", attempts)
        if status not in OK_STATUSES:
            record.set_attr("status", status)
            record.set_attr("error", error_text)
    wall_ms = _now_ms() - started
    METRICS.histogram(
        "harness.experiment.wall_ms", DEFAULT_MS_BUCKETS
    ).observe(wall_ms)
    return _Outcome(
        telemetry=ExperimentTelemetry(
            name=experiment.name,
            fingerprint=fingerprint,
            cache_hit=cache_hit,
            wall_ms=wall_ms,
            status=status,
            attempts=attempts,
            error=error_text,
        ),
        result=result,
        artifact_text=artifact_text,
        artifact_dat=artifact_dat,
    )


def run_experiments(
    names: Optional[Sequence[str]] = None,
    jobs: int = 1,
    experiments: Optional[Sequence[Experiment]] = None,
    output_dir: Optional[pathlib.Path] = None,
    cache_dir: Optional[pathlib.Path] = None,
    force: bool = False,
    write_outputs: bool = True,
    use_result_cache: bool = True,
    retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY,
) -> HarnessRun:
    """Run experiments through the harness (see module docstring).

    ``names`` selects registered experiments (None => all, registry
    order); ``experiments`` bypasses the registry entirely (tests,
    synthetic experiments).  ``force`` ignores cached results but still
    refreshes the cache; ``use_result_cache=False`` disables the result
    cache in both directions.  ``retry_policy`` bounds per-experiment
    attempts/deadline; failures never abort the run -- inspect
    ``HarnessRun.failures`` / the manifest ``status`` fields.
    """
    if experiments is None:
        registry = all_experiments()
        if names is None:
            selected = list(registry.values())
        else:
            unknown = [name for name in names if name not in registry]
            if unknown:
                raise KeyError(
                    f"unknown experiments {unknown!r}; known: "
                    f"{', '.join(registry)}"
                )
            selected = [registry[name] for name in names]
    else:
        selected = list(experiments)

    if output_dir is None:
        output_dir = default_output_dir()
    output_dir = pathlib.Path(output_dir)
    cache: Optional[ResultCache] = None
    if use_result_cache:
        if cache_dir is None:
            cache_dir = default_cache_dir(output_dir)
        cache = ResultCache(pathlib.Path(cache_dir))

    jobs = max(1, int(jobs))
    # What the pool will actually occupy: requesting more workers than
    # there are experiments never spawns idle threads, and the manifest
    # records both numbers (``jobs`` asked, ``effective_jobs`` used).
    effective_jobs = min(jobs, max(1, len(selected)))
    METRICS.gauge("harness.jobs").set(jobs)
    METRICS.gauge("harness.effective_jobs").set(effective_jobs)
    # Pre-register the cost and resilience counters so a clean run reports
    # them as explicit zeros rather than omitting them: the regression
    # gate compares baseline-side counters, and "0 misses" / "0 failures"
    # is the very claim a baseline exists to enforce.
    for counter_name in (
        "harness.result_cache.hits", "harness.result_cache.misses",
        "harness.retries", "harness.failures", "harness.timeouts",
        "harness.fingerprint_errors", "faults.injected",
        "buildcache.hits", "buildcache.misses",
        "kbuild.builds", "kconfig.resolutions",
        "kconfig.resolve.cache_hits", "kconfig.resolve.cache_misses",
        "kconfig.resolve.visited_options", "kconfig.expr.evals",
    ):
        METRICS.counter(counter_name)
    build_stats_before = BUILD_CACHE.stats()
    trace_mark = TRACER.mark()
    run_started = _now_ms()

    with span("harness.run", category="harness",
              jobs=jobs, experiments=len(selected)):
        if effective_jobs == 1:
            outcomes = [
                _execute_one(e, cache, force, retry_policy) for e in selected
            ]
        else:
            with concurrent.futures.ThreadPoolExecutor(
                max_workers=effective_jobs
            ) as pool:
                futures = [
                    pool.submit(_execute_one, e, cache, force, retry_policy)
                    for e in selected
                ]
                # Futures are collected in submission (registry) order: the
                # merge is deterministic no matter which finishes first.
                # _execute_one never raises, so one failing experiment
                # cannot discard the others' in-flight results.
                outcomes = [future.result() for future in futures]

    build_stats_after = BUILD_CACHE.stats()
    telemetry = RunTelemetry(
        jobs=jobs,
        effective_jobs=effective_jobs,
        total_wall_ms=_now_ms() - run_started,
        experiments=[outcome.telemetry for outcome in outcomes],
        kernel_builds_performed=(
            build_stats_after.misses - build_stats_before.misses
        ),
        kernel_builds_reused=(
            build_stats_after.hits - build_stats_before.hits
        ),
        kernel_cache_entries=build_stats_after.entries,
    )

    run = HarnessRun(telemetry=telemetry)
    for experiment, outcome in zip(selected, outcomes):
        if not outcome.ok:
            continue
        run.results[experiment.name] = outcome.result
        run.artifacts[experiment.name] = outcome.artifact_text or ""
        if write_outputs:
            output_dir.mkdir(parents=True, exist_ok=True)
            path = output_dir / f"{experiment.output_stem}.txt"
            atomic_write_text(path, (outcome.artifact_text or "") + "\n")
            run.output_paths[experiment.name] = path
            if outcome.artifact_dat is not None:
                atomic_write_text(
                    output_dir / f"{experiment.output_stem}.dat",
                    outcome.artifact_dat,
                )
    if write_outputs:
        output_dir.mkdir(parents=True, exist_ok=True)
        manifest_path = output_dir / MANIFEST_NAME
        atomic_write_text(manifest_path, telemetry.to_json())
        run.manifest_path = manifest_path
        artifact_paths = write_run_artifacts(
            output_dir, TRACER.records_since(trace_mark), METRICS
        )
        run.trace_path = artifact_paths["trace"]
        run.metrics_path = artifact_paths["metrics"]
    return run
