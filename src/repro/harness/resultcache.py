"""The on-disk experiment result cache.

One JSON file per experiment, keyed on the experiment's inputs
fingerprint: a warm run with unchanged inputs loads the stored result and
rendered artifact instead of re-executing, and a fingerprint mismatch
(changed source anywhere in the experiment's dependency closure) is a
miss.  Files are canonical JSON (sorted keys, fixed indentation) so warm
runs are byte-stable.

Invariants:

- **One file per experiment, last write wins**: the path is derived only
  from the experiment name (``fig-7`` and ``fig_7`` collide by design --
  registry ids never contain ``-``/``_`` ambiguity), and a store for a new
  fingerprint replaces the old entry; the cache never accumulates stale
  generations.
- **Fail-open loads**: a missing, corrupt, truncated or
  wrong-fingerprint file is a *miss*, never an error -- the experiment
  simply re-runs and overwrites it.  (The ``resultcache.load`` corrupt
  fault site exercises this path deterministically.)
- **Atomic stores**: entries are written to a temp file in the cache
  directory and ``os.replace``d into place, so a crash mid-store can
  never leave truncated JSON behind; the fail-open load remains the
  second line of defense against damage from outside the process.
- **Stored payloads are codec-encoded**: values in ``result`` are already
  JSON-safe (:mod:`repro.harness.codec`); this module never imports or
  constructs result classes itself.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Any, Optional

from repro.core.atomicio import atomic_write_text
from repro.faults import corrupt_text, fault_site


@dataclass(frozen=True)
class CachedResult:
    """One stored experiment outcome."""

    name: str
    fingerprint: str
    result: Any  # codec-encoded (JSON-safe) structure
    artifact_text: str
    artifact_dat: Optional[str] = None


class ResultCache:
    """Directory of per-experiment cached results."""

    def __init__(self, root: pathlib.Path) -> None:
        self.root = pathlib.Path(root)

    def _path(self, name: str) -> pathlib.Path:
        return self.root / f"{name.replace('-', '_')}.json"

    def load(self, name: str, fingerprint: str) -> Optional[CachedResult]:
        """The cached result for *name*, or None on miss/stale/corrupt."""
        path = self._path(name)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            payload = json.loads(corrupt_text("resultcache.load", text))
        except ValueError:
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("fingerprint") != fingerprint
        ):
            return None
        try:
            return CachedResult(
                name=payload["name"],
                fingerprint=payload["fingerprint"],
                result=payload["result"],
                artifact_text=payload["artifact_text"],
                artifact_dat=payload.get("artifact_dat"),
            )
        except KeyError:
            return None

    def store(self, entry: CachedResult) -> pathlib.Path:
        """Persist *entry*, returning its path."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "name": entry.name,
            "fingerprint": entry.fingerprint,
            "result": entry.result,
            "artifact_text": entry.artifact_text,
        }
        if entry.artifact_dat is not None:
            payload["artifact_dat"] = entry.artifact_dat
        path = self._path(entry.name)
        with fault_site("resultcache.store"):
            atomic_write_text(
                path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
            )
        return path

    def clear(self) -> int:
        """Remove every cached result; returns how many were dropped."""
        dropped = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink()
                dropped += 1
        return dropped
