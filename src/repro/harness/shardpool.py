"""Process-pool shard execution for fleet simulation and serving runs.

The sharded fleet path (``Fleet.simulate(jobs=N)``) partitions a seeded
fleet into contiguous index ranges and executes each range in a worker
process -- the :class:`~concurrent.futures.ProcessPoolExecutor` sibling
of the thread pool in :mod:`repro.harness.runner`.  Everything that
crosses the process boundary goes through the harness codec
(:mod:`repro.harness.codec`): shard specs and shard results are
registered result dataclasses, encoded to canonical JSON on the way out
and decoded on the way back, so the transport is the same deterministic,
closed-surface machinery the result cache uses.

Determinism contract (asserted by tests and the ``check.sh`` gate):

- **Shard planning is a pure function** of ``(count, jobs)``:
  :func:`shard_bounds` splits ``range(count)`` into at most *jobs*
  contiguous, near-equal ranges, largest-first remainder.
- **Workers are self-contained**: each worker rebuilds its shard's
  orchestrator from the policy value, reconstructs applications from
  registry names, and names guests by *global* fleet index -- so a
  shard's entries are byte-identical to the slice a sequential run
  would produce.
- **Merges are order-fixed**: results are collected in submission
  (shard-index) order regardless of completion order; entry lists
  concatenate, kernel-fingerprint sets union, and counter deltas fold
  into the parent registry sorted by name.

Same seed => byte-identical manifest digest regardless of job count.

Workers also report their shard's elapsed time on the tracer's host
clock (under ``bench-guests`` that clock is a
:class:`~repro.observe.tracer.TickClock`, so "elapsed" is a
machine-independent count of clock readings); the parent models
parallel wall clock as its own elapsed plus the *slowest* shard.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.orchestrator import GuestManifestEntry
from repro.harness import codec
from repro.observe import METRICS, TRACER

# Fleet entries transit the worker boundary inside FleetShardResult;
# registered here (not in the codec module) so the codec never has to
# import the orchestrator at load time.
codec.register_result_dataclass(GuestManifestEntry)


def shard_bounds(count: int, jobs: int) -> List[Tuple[int, int]]:
    """Split ``range(count)`` into <= *jobs* contiguous ``(lo, hi)`` ranges.

    Near-equal sizes, the remainder spread over the leading shards; a
    pure function of ``(count, jobs)`` so shard planning never perturbs
    the merged result.  Empty shards are never produced.
    """
    if count < 0:
        raise ValueError(f"count cannot be negative (got {count})")
    jobs = max(1, min(int(jobs), count if count else 1))
    base, remainder = divmod(count, jobs)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for index in range(jobs):
        hi = lo + base + (1 if index < remainder else 0)
        if hi > lo:
            bounds.append((lo, hi))
        lo = hi
    return bounds


@codec.register_result_dataclass
@dataclass(frozen=True)
class FleetShardSpec:
    """Everything one fleet shard worker needs (codec-encodable)."""

    #: Global fleet index of this shard's first guest.
    start: int
    #: Registry names of the drawn applications, in fleet order.
    app_names: Tuple[str, ...]
    #: ``KernelPolicy.value`` (enums stay out of the codec surface).
    policy: str
    kml: bool
    requests_per_guest: int
    #: Run the cohort-vectorized fold instead of the per-guest oracle.
    cohort: bool

    def __post_init__(self) -> None:
        object.__setattr__(self, "app_names", tuple(self.app_names))


@codec.register_result_dataclass
@dataclass(frozen=True)
class FleetShardResult:
    """One shard's merged-back outcome (codec-encodable)."""

    start: int
    #: GuestManifestEntry per guest, in global-index order.
    entries: Tuple[object, ...]
    #: Distinct kernel fingerprints this shard's orchestrator built
    #: (sorted); the parent's ``build_count`` is the size of the union.
    fingerprints: Tuple[str, ...]
    #: Counter deltas the shard's work caused, folded into the parent
    #: registry so ``bench-guests`` measures sharded work identically.
    counter_deltas: Dict[str, int]
    #: Shard elapsed on the tracer's host clock (tick-us under bench).
    elapsed_us: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "entries", tuple(self.entries))
        object.__setattr__(self, "fingerprints", tuple(self.fingerprints))


def _counter_snapshot() -> Dict[str, int]:
    return dict(METRICS.to_dict()["counters"])


def _counter_deltas(before: Dict[str, int],
                    after: Dict[str, int]) -> Dict[str, int]:
    return {
        name: value - before.get(name, 0)
        for name, value in after.items()
        if value != before.get(name, 0)
    }


def fold_counter_deltas(deltas: Dict[str, int]) -> None:
    """Apply worker counter deltas to this process's registry, by name."""
    for name in sorted(deltas):
        METRICS.counter(name).inc(deltas[name])


def run_fleet_shard(encoded_spec: str) -> str:
    """Worker entry point: execute one fleet shard, codec JSON in/out.

    Runs in the worker process.  Deliberately a module-level function of
    one string so the pool pickles nothing but a function reference and
    the encoded spec.
    """
    from repro.apps.registry import get_app
    from repro.core.orchestrator import Fleet, KernelOrchestrator, KernelPolicy

    spec: FleetShardSpec = codec.decode(json.loads(encoded_spec))
    orchestrator = KernelOrchestrator(
        policy=KernelPolicy(spec.policy), kml=spec.kml
    )
    drawn = [get_app(name) for name in spec.app_names]
    guest_specs = [
        Fleet._guest_spec(orchestrator, spec.start + offset, app)
        for offset, app in enumerate(drawn)
    ]
    Fleet._validate_specs(guest_specs)
    counters_before = _counter_snapshot()
    started_us = TRACER.clock.now_us()
    if spec.cohort:
        entries = Fleet._simulate_cohort(
            orchestrator, drawn, guest_specs, spec.requests_per_guest
        )
    else:
        entries = Fleet._simulate_sequential(
            orchestrator, drawn, guest_specs, spec.requests_per_guest
        )
    elapsed_us = TRACER.clock.now_us() - started_us
    result = FleetShardResult(
        start=spec.start,
        entries=tuple(entries),
        fingerprints=tuple(sorted(orchestrator._kernel_fingerprints)),
        counter_deltas=_counter_deltas(counters_before, _counter_snapshot()),
        elapsed_us=elapsed_us,
    )
    return json.dumps(codec.encode(result), sort_keys=True)


def execute_fleet_shards(
    specs: List[FleetShardSpec],
) -> List[FleetShardResult]:
    """Run every shard in a worker process; results in shard order.

    Futures are collected in submission order, so the merge is
    deterministic no matter which shard finishes first.  Uses the
    ``fork`` start method: workers inherit the parent's warmed build and
    resolution caches (and, under ``bench-guests``, its TickClock), the
    same way the thread-pool harness workers share them.
    """
    import multiprocessing

    if not specs:
        return []
    context = multiprocessing.get_context("fork")
    encoded = [json.dumps(codec.encode(spec), sort_keys=True)
               for spec in specs]
    with ProcessPoolExecutor(max_workers=len(specs),
                             mp_context=context) as pool:
        futures = [pool.submit(run_fleet_shard, text) for text in encoded]
        decoded = [
            codec.decode(json.loads(future.result())) for future in futures
        ]
    return decoded


# -- run-level serving fan-out ---------------------------------------------


def run_serving_shard(pickled_spec) -> Tuple[object, Dict[str, int]]:
    """Worker entry point: one whole serving run plus its counter deltas.

    Serving runs shard at *run* granularity, never within a run: the
    router's global coupling (``max_total`` admission, ``peak_live`` and
    the queue high-water mark are time-maxima over cross-app sums) makes
    a single run's manifest irreproducible from independently-executed
    app slices (see ``docs/SERVING.md``).
    """
    from repro.traffic.serve import run_serving

    counters_before = _counter_snapshot()
    report = run_serving(pickled_spec)
    return report, _counter_deltas(counters_before, _counter_snapshot())


def execute_serving_runs(specs: List[object], jobs: int) -> List[object]:
    """Run whole :class:`ServeSpec` runs across worker processes.

    Reports come back in submission order; each worker's counter deltas
    fold into the parent registry, so metrics match a sequential sweep.
    With ``jobs <= 1`` (or a single spec) the runs execute in-process.
    """
    import multiprocessing

    jobs = max(1, int(jobs))
    if jobs == 1 or len(specs) <= 1:
        reports = []
        for spec in specs:
            report, _ = run_serving_shard(spec)
            reports.append(report)
        return reports
    context = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(max_workers=min(jobs, len(specs)),
                             mp_context=context) as pool:
        futures = [pool.submit(run_serving_shard, spec) for spec in specs]
        outcomes = [future.result() for future in futures]
    for _, deltas in outcomes:
        fold_counter_deltas(deltas)
    return [report for report, _ in outcomes]
