"""The parallel experiment harness.

One registry + runner for every paper reproduction: experiments are
discovered behind a uniform :class:`Experiment` protocol, executed
concurrently with a shared kernel build cache, cached on disk by inputs
fingerprint, and reported through a JSON run manifest.

    from repro.harness import run_experiments

    run = run_experiments(jobs=4)          # all experiments
    run.results["fig7"]                     # structured results
    run.telemetry.result_cache_hit_rate     # run telemetry

CLI equivalent: ``python -m repro.cli run-all --jobs 4``.

Package-level invariants (each submodule documents its own):

- results/artifacts merge in registry order regardless of ``jobs``
  (:mod:`.runner`);
- the result cache is keyed on the experiment's transitive-source
  fingerprint, never on time or environment (:mod:`.registry`,
  :mod:`.resultcache`);
- cached results round-trip through the JSON codec so warm and cold runs
  are indistinguishable to consumers (:mod:`.codec`);
- every run's observability artifacts (``trace.json``/``metrics.json``)
  are written next to the run manifest (:mod:`repro.observe`).
"""

from repro.harness.registry import (
    Artifact,
    Experiment,
    all_experiments,
    get_experiment,
    module_fingerprint,
)
from repro.harness.resultcache import CachedResult, ResultCache
from repro.harness.runner import (
    MANIFEST_NAME,
    HarnessRun,
    default_cache_dir,
    default_output_dir,
    run_experiments,
)

__all__ = [
    "Artifact",
    "CachedResult",
    "Experiment",
    "HarnessRun",
    "MANIFEST_NAME",
    "ResultCache",
    "all_experiments",
    "default_cache_dir",
    "default_output_dir",
    "get_experiment",
    "module_fingerprint",
    "run_experiments",
]
