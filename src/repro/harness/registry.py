"""The experiment registry: a uniform protocol over the experiment modules.

Each module under :mod:`repro.experiments` exposes ``run()`` plus a
``table()``/``figure()`` renderer.  The registry wraps every one of them in
an :class:`Experiment` -- name, inputs fingerprint, ``run()``, rendered
artifact -- so the runner, the CLI, the benchmark drivers and the
EXPERIMENTS.md generator all go through one interface instead of importing
modules ad hoc.

The inputs fingerprint is a content hash of the experiment's source *and
the source of every repro module it (transitively) imports*, salted with
the package version.  It is what keys the on-disk result cache: edit any
model an experiment depends on and only the affected experiments re-run.

Invariants:

- **Fingerprint inputs.** The fingerprint digests exactly: the package
  version, plus (module name, module source) for every module in the
  experiment's transitive ``repro.*`` import closure, in sorted module
  order.  No timestamps, paths, or environment state -- the same tree
  always fingerprints the same, any source edit in the closure changes it.
- **Closure via source text.** Imports are discovered by scanning source
  for ``import repro...`` / ``from repro... import`` (including imports
  local to functions), not by executing modules, so lazily imported
  dependencies still invalidate the cache.
- **Memoization is per-process.** ``_source_cache`` / ``_closure_cache``
  assume sources do not change within one process lifetime.
- **Source errors are counted, not swallowed.** A module whose source
  cannot be read (unimportable, unreadable file) contributes the empty
  string to the digest, but the failure is recorded: the
  ``harness.fingerprint_errors`` counter increments once per failing
  module and every affected experiment's ``registry.fingerprint`` span
  carries a ``source_errors`` attribute naming module and error.
"""

from __future__ import annotations

import hashlib
import importlib
import re
from dataclasses import dataclass, field
from types import ModuleType
from typing import Any, Callable, Dict, List, Optional

from repro._version import __version__
from repro.metrics.reporting import Figure, render_figure, render_table

#: ``import repro.x.y`` / ``from repro.x.y import z`` in experiment sources.
_IMPORT_RE = re.compile(
    r"^\s*(?:from\s+(repro[.\w]*)\s+import|import\s+(repro[.\w]+))",
    re.MULTILINE,
)

_source_cache: Dict[str, str] = {}
_closure_cache: Dict[str, List[str]] = {}
#: module name -> "ErrorType: message" for every source-read failure seen
#: this process (memoized alongside _source_cache).
_source_errors: Dict[str, str] = {}


def reset_fingerprint_caches() -> None:
    """Drop the per-process source/closure/error memos (test isolation)."""
    _source_cache.clear()
    _closure_cache.clear()
    _source_errors.clear()


def _note_source_error(module_name: str, error: BaseException) -> None:
    from repro.observe import METRICS

    _source_errors[module_name] = f"{type(error).__name__}: {error}"
    METRICS.counter("harness.fingerprint_errors").inc()


def _module_source(module_name: str) -> str:
    """Source text of *module_name* ('' when it has no readable file).

    Failures are narrow and accounted: only an unimportable module
    (``ImportError``) or an unreadable source file (``OSError``) yields
    '', and each increments ``harness.fingerprint_errors`` once per
    process with the module name kept in ``_source_errors``.  A module
    legitimately without a source file (builtin, namespace package)
    hashes as '' without being counted as an error.
    """
    if module_name not in _source_cache:
        try:
            module = importlib.import_module(module_name)
        except ImportError as error:
            _note_source_error(module_name, error)
            _source_cache[module_name] = ""
            return ""
        filename = getattr(module, "__file__", None)
        if filename is None:
            _source_cache[module_name] = ""
            return ""
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                _source_cache[module_name] = handle.read()
        except OSError as error:
            _note_source_error(module_name, error)
            _source_cache[module_name] = ""
    return _source_cache[module_name]


def _direct_repro_imports(source: str) -> List[str]:
    found = []
    for match in _IMPORT_RE.finditer(source):
        name = match.group(1) or match.group(2)
        if name:
            found.append(name)
    return found


def _dependency_closure(module_name: str) -> List[str]:
    """*module_name* plus every repro module reachable from its imports."""
    if module_name in _closure_cache:
        return _closure_cache[module_name]
    seen = set()
    stack = [module_name]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(_direct_repro_imports(_module_source(current)))
    closure = sorted(seen)
    _closure_cache[module_name] = closure
    return closure


def module_fingerprint(module_name: str) -> str:
    """Inputs fingerprint of an experiment module (see module docstring)."""
    from repro.observe import METRICS, span

    with span("registry.fingerprint", category="harness",
              module=module_name) as record:
        digest = hashlib.sha256()
        digest.update(f"version={__version__}\n".encode("utf-8"))
        closure = _dependency_closure(module_name)
        record.set_attr("closure_size", len(closure))
        errors = {
            name: _source_errors[name]
            for name in closure if name in _source_errors
        }
        if errors:
            record.set_attr("source_errors", errors)
        for dependency in closure:
            digest.update(dependency.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(_module_source(dependency).encode("utf-8"))
            digest.update(b"\x01")
        METRICS.counter("registry.fingerprints").inc()
        return digest.hexdigest()[:16]


@dataclass(frozen=True)
class Artifact:
    """An experiment's rendered output: plain text plus an optional figure."""

    text: str
    figure: Optional[Figure] = None


@dataclass(frozen=True)
class Experiment:
    """One experiment behind the uniform harness protocol."""

    name: str
    run_fn: Callable[[], Any]
    artifact_fn: Callable[[], Artifact]
    fingerprint_fn: Callable[[], str]
    module: Optional[ModuleType] = field(default=None, compare=False)

    def run(self) -> Any:
        """Execute the experiment, returning its structured result."""
        return self.run_fn()

    def artifact(self) -> Artifact:
        """Render the experiment's paper table/figure."""
        return self.artifact_fn()

    def fingerprint(self) -> str:
        """The inputs fingerprint keying this experiment's cached result."""
        return self.fingerprint_fn()

    @property
    def output_stem(self) -> str:
        """Filename stem under ``benchmarks/output/`` (matches the
        historical benchmark-driver naming)."""
        return self.name.replace("-", "_")

    @classmethod
    def from_module(cls, name: str, module: ModuleType) -> "Experiment":
        if hasattr(module, "table"):
            def _artifact() -> Artifact:
                return Artifact(text=render_table(module.table()))
        elif hasattr(module, "figure"):
            def _artifact() -> Artifact:
                figure = module.figure()
                return Artifact(text=render_figure(figure), figure=figure)
        else:
            raise TypeError(
                f"experiment module {module.__name__} has neither table() "
                "nor figure()"
            )
        return cls(
            name=name,
            run_fn=module.run,
            artifact_fn=_artifact,
            fingerprint_fn=lambda: module_fingerprint(module.__name__),
            module=module,
        )


def all_experiments() -> Dict[str, Experiment]:
    """Every registered experiment, in paper order (fig3 .. ext-security)."""
    from repro.experiments import ALL_EXPERIMENTS

    return {
        name: Experiment.from_module(name, module)
        for name, module in ALL_EXPERIMENTS.items()
    }


def get_experiment(name: str) -> Experiment:
    """Look up one experiment by its registry id (e.g. ``fig7``)."""
    registry = all_experiments()
    if name not in registry:
        raise KeyError(
            f"unknown experiment {name!r}; known: {', '.join(registry)}"
        )
    return registry[name]
