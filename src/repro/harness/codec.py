"""JSON codec for experiment results.

Experiment ``run()`` results are nested structures of dicts, lists, tuples
and a small set of result dataclasses.  The on-disk result cache stores
them as canonical JSON; this codec makes the round trip faithful -- tuples
stay tuples, non-string dict keys survive, and the registered dataclasses
are reconstructed so cached results still answer attribute access
(``report.latencies_us`` etc.) exactly like live ones.

Invariants:

- **Lossless round trip**: ``decode(encode(x)) == x`` for every value an
  experiment may return (primitives, lists, tuples, sets, dicts with
  non-string keys, registered dataclasses); the runner relies on this to
  make warm and cold results indistinguishable.
- **Deterministic encoding**: set elements are sorted, so
  ``json.dumps(encode(x), sort_keys=True)`` is byte-stable.
- **Closed decode surface**: the decoder only ever constructs dataclasses
  whitelisted in :data:`RESULT_DATACLASSES` -- a cache file can never name
  an arbitrary class to instantiate.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Type

from repro.security.attack_surface import AttackSurfaceReport, Cve
from repro.syscall.lmbench import LmbenchReport
from repro.workloads.coldstart import ColdStartResult

#: Dataclasses that may appear in experiment results.  A whitelist: the
#: decoder must never import/construct arbitrary classes named by a file.
RESULT_DATACLASSES: Dict[str, Type] = {
    cls.__name__: cls
    for cls in (AttackSurfaceReport, ColdStartResult, Cve, LmbenchReport)
}


def register_result_dataclass(cls: Type) -> Type:
    """Whitelist *cls* for codec round trips (idempotent).

    Modules whose dataclasses cross the codec boundary but that the codec
    must not import at module load (e.g. the shard pool, whose results
    transit worker processes as codec JSON) register themselves here.
    """
    existing = RESULT_DATACLASSES.get(cls.__name__)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"result dataclass name {cls.__name__!r} already registered "
            f"by {existing.__module__}"
        )
    RESULT_DATACLASSES[cls.__name__] = cls
    return cls

_TUPLE = "__tuple__"
_ITEMS = "__items__"
_DATACLASS = "__dataclass__"
_MARKERS = (_TUPLE, _ITEMS, _DATACLASS)


def encode(value: Any) -> Any:
    """Encode *value* into JSON-serializable primitives."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {_TUPLE: [encode(item) for item in value]}
    if isinstance(value, (frozenset, set)):
        # Sets have no order; sort the encoded repr for determinism.
        return {_TUPLE: sorted((encode(item) for item in value), key=repr)}
    if isinstance(value, list):
        return [encode(item) for item in value]
    if isinstance(value, dict):
        plain_keys = all(
            isinstance(key, str) and key not in _MARKERS for key in value
        )
        if plain_keys:
            return {key: encode(item) for key, item in value.items()}
        return {_ITEMS: [[encode(k), encode(v)] for k, v in value.items()]}
    if dataclasses.is_dataclass(value):
        name = type(value).__name__
        if name not in RESULT_DATACLASSES:
            raise TypeError(
                f"unregistered result dataclass {name!r}; add it to "
                "repro.harness.codec.RESULT_DATACLASSES"
            )
        fields = {
            f.name: encode(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {_DATACLASS: name, "fields": fields}
    raise TypeError(f"cannot encode result value of type {type(value)!r}")


def decode(value: Any) -> Any:
    """Invert :func:`encode`."""
    if isinstance(value, list):
        return [decode(item) for item in value]
    if isinstance(value, dict):
        if _TUPLE in value:
            return tuple(decode(item) for item in value[_TUPLE])
        if _ITEMS in value:
            return {decode(k): decode(v) for k, v in value[_ITEMS]}
        if _DATACLASS in value:
            cls = RESULT_DATACLASSES[value[_DATACLASS]]
            fields = {
                name: decode(item)
                for name, item in value["fields"].items()
            }
            return cls(**fields)
        return {key: decode(item) for key, item in value.items()}
    return value
