"""A deterministic run-queue scheduler with cost accounting.

Implements just enough of CFS-style scheduling for the paper's experiments:
round-robin over ready tasks, sleep/wake, fork/thread-create/exec/exit, and
context-switch cost accounting that distinguishes same-address-space
(thread) switches from cross-address-space (process) switches and charges
SMP lock overhead when the kernel is built with CONFIG_SMP.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.sched.smp import SmpModel
from repro.sched.task import Task, TaskKind, TaskState
from repro.simcore.clock import VirtualClock
from repro.syscall.cpu import CpuCostModel


class SchedulerError(RuntimeError):
    """Raised on invalid scheduling operations (e.g. waking a zombie)."""


#: Cache refill per KiB of working set on a switch (shared with lmbench).
CACHE_REFILL_NS_PER_KB = 9.0


@dataclass
class Scheduler:
    """One simulated kernel's scheduler."""

    cost_model: CpuCostModel
    smp: SmpModel = field(default_factory=lambda: SmpModel(smp_enabled=False))
    clock: VirtualClock = field(default_factory=VirtualClock)
    switch_count: int = 0
    _tasks: Dict[int, Task] = field(default_factory=dict)
    _ready: Deque[int] = field(default_factory=deque)
    _next_pid: int = 1
    _next_asid: int = 1
    current: Optional[Task] = None

    @property
    def clock_ns(self) -> float:
        """Simulated nanoseconds accumulated on this scheduler's clock."""
        return self.clock.now_ns

    @clock_ns.setter
    def clock_ns(self, value: float) -> None:
        # Exact-set semantics for legacy ``scheduler.clock_ns += x`` /
        # ``= 0.0`` call sites (futex charges, perf-messaging rebase).
        self.clock.jump_to(value)

    # -- task lifecycle ----------------------------------------------------

    def spawn(self, name: str, working_set_kb: int = 0,
              kernel_mode: bool = False) -> Task:
        """Create the initial process of a new address space."""
        task = Task(
            pid=self._alloc_pid(),
            name=name,
            kind=TaskKind.PROCESS,
            address_space_id=self._alloc_asid(),
            kernel_mode=kernel_mode,
            working_set_kb=working_set_kb,
        )
        self._admit(task)
        return task

    def fork(self, parent: Task) -> Task:
        """Fork *parent*: a new process in a new (COW) address space."""
        self._check_alive(parent)
        child = Task(
            pid=self._alloc_pid(),
            name=f"{parent.name}",
            kind=TaskKind.PROCESS,
            address_space_id=self._alloc_asid(),
            parent_pid=parent.pid,
            kernel_mode=parent.kernel_mode,
            working_set_kb=parent.working_set_kb,
        )
        self._admit(child)
        self.clock.advance(1600.0 + 0.4 * parent.working_set_kb)  # COW setup
        return child

    def create_thread(self, parent: Task, name: Optional[str] = None) -> Task:
        """Create a thread sharing *parent*'s address space."""
        self._check_alive(parent)
        thread = Task(
            pid=self._alloc_pid(),
            name=name or f"{parent.name}-thr",
            kind=TaskKind.THREAD,
            address_space_id=parent.address_space_id,
            parent_pid=parent.pid,
            kernel_mode=parent.kernel_mode,
            working_set_kb=parent.working_set_kb,
        )
        self._admit(thread)
        self.clock.advance(900.0)
        return thread

    def exec(self, task: Task, name: str, working_set_kb: int = 0) -> Task:
        """Replace *task*'s image (exec); keeps pid, resets working set."""
        self._check_alive(task)
        task.name = name
        task.working_set_kb = working_set_kb
        self.clock.advance(5200.0)
        return task

    def exit(self, task: Task, code: int = 0) -> None:
        self._check_alive(task)
        task.state = TaskState.ZOMBIE
        task.exit_code = code
        if task.pid in self._ready:
            self._ready.remove(task.pid)
        if self.current is task:
            self.current = None
        self.clock.advance(300.0)

    # -- state transitions ---------------------------------------------------

    def sleep(self, task: Task) -> None:
        """Move *task* to the sleeping state (e.g. a control process)."""
        self._check_alive(task)
        if task.state is TaskState.SLEEPING:
            return
        if task.pid in self._ready:
            self._ready.remove(task.pid)
        if self.current is task:
            self.current = None
        task.state = TaskState.SLEEPING

    def wake(self, task: Task) -> None:
        self._check_alive(task)
        if task.state is not TaskState.SLEEPING:
            return
        task.state = TaskState.READY
        self._ready.append(task.pid)
        self.clock.advance(350.0 + self.smp.lock_pair_ns())

    # -- scheduling -----------------------------------------------------------

    def schedule(self) -> Optional[Task]:
        """Pick and switch to the next ready task; returns it (or None).

        Charges the switch cost: base switch + address-space cost if the
        incoming task lives in a different address space + cache refill for
        its working set + SMP overhead.  Sleeping tasks cost nothing -- the
        mechanism behind Figure 11's flat lines.
        """
        previous = self.current
        if previous is not None and previous.state is TaskState.RUNNING:
            previous.state = TaskState.READY
            self._ready.append(previous.pid)
        if not self._ready:
            self.current = None
            return None
        next_task = self._tasks[self._ready.popleft()]
        next_task.state = TaskState.RUNNING
        if previous is not None and previous is not next_task:
            same_space = previous.address_space_id == next_task.address_space_id
            cost = self.cost_model.context_switch_ns(same_space)
            cost += self.smp.switch_overhead_ns()
            cost += CACHE_REFILL_NS_PER_KB * min(
                next_task.working_set_kb, 64
            ) * self._cache_pressure()
            self.clock.advance(cost)
            self.switch_count += 1
            next_task.vruntime_ns += cost
        self.current = next_task
        return next_task

    def run_for(self, task: Task, duration_ns: float) -> None:
        """Run *task* for a simulated CPU burst."""
        if self.current is not task:
            raise SchedulerError(f"{task} is not current")
        self.clock.advance(duration_ns)
        task.vruntime_ns += duration_ns

    # -- queries ---------------------------------------------------------------

    def task(self, pid: int) -> Task:
        try:
            return self._tasks[pid]
        except KeyError:
            raise SchedulerError(f"no such pid {pid}") from None

    def tasks(self) -> List[Task]:
        return list(self._tasks.values())

    def ready_count(self) -> int:
        return len(self._ready)

    def sleeping_count(self) -> int:
        return sum(
            1 for t in self._tasks.values() if t.state is TaskState.SLEEPING
        )

    def runnable_in_space(self, address_space_id: int) -> List[Task]:
        return [
            t
            for t in self._tasks.values()
            if t.address_space_id == address_space_id and t.alive
        ]

    # -- internals ----------------------------------------------------------------

    def _cache_pressure(self) -> float:
        runnable = len(self._ready) + (1 if self.current else 0)
        return min(1.0, runnable / 16.0)

    def _alloc_pid(self) -> int:
        pid = self._next_pid
        self._next_pid += 1
        return pid

    def _alloc_asid(self) -> int:
        asid = self._next_asid
        self._next_asid += 1
        return asid

    def _admit(self, task: Task) -> None:
        self._tasks[task.pid] = task
        self._ready.append(task.pid)

    @staticmethod
    def _check_alive(task: Task) -> None:
        if not task.alive:
            raise SchedulerError(f"{task} is a zombie")
