"""Futexes and POSIX semaphores over the simulated scheduler.

These implement real wait/wake semantics (values, wait queues, FIFO wakeup)
so the Section 5 stress workloads (``futex`` and ``sem_posix``) exercise
actual synchronization behaviour, with SMP lock overhead charged per
operation through the kernel's :class:`~repro.sched.smp.SmpModel`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict

from repro.sched.scheduler import Scheduler
from repro.sched.task import Task

#: Base in-kernel cost of one futex operation (hash lookup + queue op).
FUTEX_OP_NS = 28.0

#: POSIX semaphores add a small layer over futex in the kernel/libc split.
SEM_OP_NS = 38.0


@dataclass
class FutexTable:
    """The kernel's futex hash table for one simulated kernel instance."""

    scheduler: Scheduler
    _values: Dict[int, int] = field(default_factory=dict)
    _waiters: Dict[int, Deque[Task]] = field(default_factory=dict)
    wait_count: int = 0
    wake_count: int = 0

    def value(self, address: int) -> int:
        return self._values.get(address, 0)

    def store(self, address: int, value: int) -> None:
        self._values[address] = value

    def _charge(self, base_ns: float) -> None:
        self.scheduler.clock_ns += (
            base_ns + self.scheduler.smp.futex_overhead_ns()
        )

    def wait(self, task: Task, address: int, expected: int) -> bool:
        """FUTEX_WAIT: sleep *task* if the value still equals *expected*.

        Returns True if the task went to sleep, False on the EAGAIN path
        (value changed before we could sleep).
        """
        self._charge(FUTEX_OP_NS)
        self.wait_count += 1
        if self.value(address) != expected:
            return False
        self._waiters.setdefault(address, deque()).append(task)
        self.scheduler.sleep(task)
        return True

    def wake(self, address: int, count: int = 1) -> int:
        """FUTEX_WAKE: wake up to *count* waiters; returns how many woke."""
        self._charge(FUTEX_OP_NS)
        self.wake_count += 1
        queue = self._waiters.get(address)
        woken = 0
        while queue and woken < count:
            task = queue.popleft()
            self.scheduler.wake(task)
            woken += 1
        return woken

    def waiters(self, address: int) -> int:
        return len(self._waiters.get(address, ()))


@dataclass
class PosixSemaphore:
    """A POSIX semaphore implemented over the futex table.

    Matches glibc's fast path: uncontended post/wait are a single atomic op
    (plus SMP lock cost); contention falls through to futex wait/wake.
    """

    futexes: FutexTable
    address: int
    initial: int = 0

    def __post_init__(self) -> None:
        self.futexes.store(self.address, self.initial)

    @property
    def value(self) -> int:
        return self.futexes.value(self.address)

    def post(self) -> None:
        self.futexes.scheduler.clock_ns += (
            SEM_OP_NS + self.futexes.scheduler.smp.futex_overhead_ns()
        )
        self.futexes.store(self.address, self.value + 1)
        if self.futexes.waiters(self.address):
            self.futexes.wake(self.address, 1)

    def wait(self, task: Task) -> bool:
        """sem_wait: returns True if acquired immediately, False if slept."""
        self.futexes.scheduler.clock_ns += (
            SEM_OP_NS + self.futexes.scheduler.smp.futex_overhead_ns()
        )
        if self.value > 0:
            self.futexes.store(self.address, self.value - 1)
            return True
        self.futexes.wait(task, self.address, 0)
        return False

    def try_consume_after_wake(self) -> bool:
        """After a wakeup, retry the decrement (loser goes back to sleep)."""
        if self.value > 0:
            self.futexes.store(self.address, self.value - 1)
            return True
        return False
