"""SMP model: lock and synchronization overhead of CONFIG_SMP.

The paper's Section 5 experiments measure the worst case for SMP support: a
single-CPU system running context-switch-heavy workloads on a kernel built
with SMP.  An SMP kernel pays for atomic operations (``lock`` prefixes),
memory barriers and per-CPU indirection even with one processor online;
a UP (uniprocessor) build compiles them away.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Extra cost of one kernel lock/unlock pair on an SMP build (lock-prefixed
#: RMW + barriers) relative to the UP build's plain increments.
SMP_LOCK_PAIR_NS = 12.0

#: Locks taken per context switch (runqueue, wait queue).
LOCKS_PER_SWITCH = 2

#: Locks taken per futex/semaphore operation (hash bucket, wait queue).
LOCKS_PER_FUTEX_OP = 2

#: Extra fixed scheduler work per switch on SMP (per-CPU bookkeeping).
SMP_SWITCH_FIXED_NS = 8.0

#: Speedup factor per extra CPU for parallel builds (sublinear: make -j).
PARALLEL_EFFICIENCY = 0.85


@dataclass(frozen=True)
class SmpModel:
    """SMP configuration of a simulated kernel instance."""

    smp_enabled: bool
    cpus: int = 1

    def __post_init__(self) -> None:
        if self.cpus < 1:
            raise ValueError("need at least one CPU")
        if not self.smp_enabled and self.cpus > 1:
            raise ValueError("a UP kernel cannot drive multiple CPUs")

    def lock_pair_ns(self) -> float:
        """Cost of one lock/unlock pair inside the kernel."""
        return SMP_LOCK_PAIR_NS if self.smp_enabled else 0.0

    def switch_overhead_ns(self) -> float:
        """Extra context-switch cost attributable to SMP support."""
        if not self.smp_enabled:
            return 0.0
        return SMP_SWITCH_FIXED_NS + LOCKS_PER_SWITCH * SMP_LOCK_PAIR_NS

    def futex_overhead_ns(self) -> float:
        """Extra futex/sem operation cost attributable to SMP support."""
        if not self.smp_enabled:
            return 0.0
        return LOCKS_PER_FUTEX_OP * SMP_LOCK_PAIR_NS

    def parallel_speedup(self, jobs: int) -> float:
        """Wall-clock speedup of a *jobs*-way parallel workload.

        Building Linux with one processor "takes almost twice as long as
        with two processors" (Section 5); efficiency decays geometrically.
        """
        if jobs < 1:
            raise ValueError("jobs must be positive")
        usable = min(jobs, self.cpus)
        speedup = 0.0
        for cpu_index in range(usable):
            speedup += PARALLEL_EFFICIENCY ** cpu_index
        return speedup
