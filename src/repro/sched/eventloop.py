"""Event-loop substrate: epoll, eventfd and timerfd over the scheduler.

The paper's application analysis keeps running into the same trio --
``CONFIG_EPOLL`` for event polling, ``CONFIG_EVENTFD`` for thread wakeups,
``CONFIG_TIMERFD`` for timers (Table 1, Section 4.1).  This module
implements them as working objects: pollable files with readiness state, a
level-triggered epoll instance that really blocks and wakes tasks through
the scheduler, and the syscall-engine charging (so a kernel without the
corresponding option fails with ENOSYS, exactly as the derivation loop
expects).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.sched.scheduler import Scheduler
from repro.sched.task import Task
from repro.syscall.dispatch import SyscallEngine


class EventLoopError(RuntimeError):
    """Invalid epoll usage (duplicate registration, unknown fd, ...)."""


class EventMask(enum.Flag):
    NONE = 0
    IN = enum.auto()
    OUT = enum.auto()
    HUP = enum.auto()


class PollableFile:
    """Base class for files an epoll instance can watch."""

    def __init__(self, fd: int):
        self.fd = fd
        self.closed = False

    def readiness(self) -> EventMask:
        raise NotImplementedError

    def close(self) -> None:
        self.closed = True


class SimSocket(PollableFile):
    """A socket with an rx queue; writable unless its tx window is full."""

    def __init__(self, fd: int, tx_window: int = 8):
        super().__init__(fd)
        self._rx: Deque[bytes] = deque()
        self._tx_in_flight = 0
        self._tx_window = tx_window
        self.peer_closed = False

    def deliver(self, payload: bytes) -> None:
        """Data arrives from the network."""
        if self.closed:
            raise EventLoopError("delivery to a closed socket")
        self._rx.append(payload)

    def recv(self) -> Optional[bytes]:
        return self._rx.popleft() if self._rx else None

    def send(self, payload: bytes) -> bool:
        if self._tx_in_flight >= self._tx_window:
            return False
        self._tx_in_flight += 1
        return True

    def tx_complete(self, count: int = 1) -> None:
        self._tx_in_flight = max(0, self._tx_in_flight - count)

    def hang_up(self) -> None:
        self.peer_closed = True

    def readiness(self) -> EventMask:
        mask = EventMask.NONE
        if self._rx:
            mask |= EventMask.IN
        if self._tx_in_flight < self._tx_window:
            mask |= EventMask.OUT
        if self.peer_closed:
            mask |= EventMask.HUP | EventMask.IN
        return mask


class SimEventFd(PollableFile):
    """eventfd semantics: a 64-bit counter; readable while nonzero."""

    def __init__(self, fd: int, initial: int = 0):
        super().__init__(fd)
        self.counter = initial

    def signal(self, value: int = 1) -> None:
        if value < 1:
            raise EventLoopError("eventfd write must be positive")
        self.counter += value

    def consume(self) -> int:
        value, self.counter = self.counter, 0
        return value

    def readiness(self) -> EventMask:
        return (EventMask.IN if self.counter else EventMask.NONE) | (
            EventMask.OUT
        )


class SimTimerFd(PollableFile):
    """timerfd semantics: fires when the engine clock passes the deadline."""

    def __init__(self, fd: int, engine: SyscallEngine):
        super().__init__(fd)
        self._engine = engine
        self._deadline_ns: Optional[float] = None
        self.expirations = 0

    def arm(self, delay_ns: float) -> None:
        if delay_ns <= 0:
            raise EventLoopError("timerfd delay must be positive")
        self._deadline_ns = self._engine.clock_ns + delay_ns

    def readiness(self) -> EventMask:
        if self._deadline_ns is not None and (
            self._engine.clock_ns >= self._deadline_ns
        ):
            return EventMask.IN
        return EventMask.NONE

    def acknowledge(self) -> None:
        if self.readiness() & EventMask.IN:
            self.expirations += 1
            self._deadline_ns = None


@dataclass
class EpollInstance:
    """A level-triggered epoll instance bound to one kernel and scheduler."""

    engine: SyscallEngine
    scheduler: Scheduler
    _interest: Dict[int, Tuple[PollableFile, EventMask]] = field(
        default_factory=dict
    )
    _waiters: Deque[Task] = field(default_factory=deque)

    def __post_init__(self) -> None:
        # Creating the instance requires CONFIG_EPOLL.
        self.engine.invoke("epoll_create1")

    # -- interest list -------------------------------------------------------

    def add(self, file: PollableFile, mask: EventMask) -> None:
        self.engine.invoke("epoll_ctl")
        if file.fd in self._interest:
            raise EventLoopError(f"fd {file.fd} already registered (EEXIST)")
        self._interest[file.fd] = (file, mask)

    def modify(self, file: PollableFile, mask: EventMask) -> None:
        self.engine.invoke("epoll_ctl")
        if file.fd not in self._interest:
            raise EventLoopError(f"fd {file.fd} not registered (ENOENT)")
        self._interest[file.fd] = (file, mask)

    def remove(self, file: PollableFile) -> None:
        self.engine.invoke("epoll_ctl")
        if self._interest.pop(file.fd, None) is None:
            raise EventLoopError(f"fd {file.fd} not registered (ENOENT)")

    # -- waiting ---------------------------------------------------------------

    def _ready_events(self) -> List[Tuple[PollableFile, EventMask]]:
        ready = []
        for file, mask in self._interest.values():
            if file.closed:
                continue
            fired = file.readiness() & (mask | EventMask.HUP)
            if fired:
                ready.append((file, fired))
        return ready

    def wait(self, task: Task, max_events: int = 64) -> List[
            Tuple[PollableFile, EventMask]]:
        """epoll_wait: return ready events, blocking *task* if none."""
        self.engine.invoke("epoll_wait")
        ready = self._ready_events()
        if ready:
            return ready[:max_events]
        self._waiters.append(task)
        self.scheduler.sleep(task)
        return []

    def notify(self) -> int:
        """Kernel-side: readiness may have changed; wake blocked waiters."""
        if not self._ready_events():
            return 0
        woken = 0
        while self._waiters:
            self.scheduler.wake(self._waiters.popleft())
            woken += 1
        return woken
