"""Task model: processes and threads."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class TaskKind(enum.Enum):
    PROCESS = "process"
    THREAD = "thread"


class TaskState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    SLEEPING = "sleeping"
    ZOMBIE = "zombie"


@dataclass
class Task:
    """One schedulable entity.

    ``address_space_id`` is shared between threads of a process and unique
    per process; the scheduler uses it to decide whether a switch crosses
    address spaces (the distinction Figure 12 measures).  ``kernel_mode``
    marks KML kernel-mode processes: they are ordinary tasks (paging and
    scheduling apply), only their syscall entry differs (Section 3.2).
    """

    pid: int
    name: str
    kind: TaskKind
    address_space_id: int
    parent_pid: Optional[int] = None
    state: TaskState = TaskState.READY
    kernel_mode: bool = False
    working_set_kb: int = 0
    exit_code: Optional[int] = None
    vruntime_ns: float = field(default=0.0)

    @property
    def alive(self) -> bool:
        return self.state is not TaskState.ZOMBIE

    def __str__(self) -> str:
        return f"<Task {self.pid} {self.name} {self.kind.value} {self.state.value}>"
