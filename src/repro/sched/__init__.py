"""Process/scheduling substrate.

A small but real process model: tasks with address spaces, fork/exec/thread
creation, a run queue with deterministic round-robin scheduling, context
switch cost accounting (threads vs processes, Figure 12), SMP lock overhead
(Section 5), and futex/POSIX-semaphore wait queues used by the stress
workloads.
"""

from repro.sched.futex import FutexTable, PosixSemaphore
from repro.sched.scheduler import Scheduler, SchedulerError
from repro.sched.smp import SmpModel
from repro.sched.task import Task, TaskKind, TaskState

__all__ = [
    "FutexTable",
    "PosixSemaphore",
    "Scheduler",
    "SchedulerError",
    "SmpModel",
    "Task",
    "TaskKind",
    "TaskState",
]
