"""A hierarchical timer wheel, as the kernel's timer subsystem uses.

Backs the simulated kernel's timeout machinery: ``timerfd`` deadlines,
scheduler sleep timeouts, TCP retransmission/TIME_WAIT timers.  The wheel
gives O(1) arm/cancel and amortized O(1) advance -- the structure behind
``CONFIG_HZ``'s tick choices (the 100/250/1000 Hz choice group in the
option database sets the wheel's tick length).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: Slots per wheel level (the kernel uses 64 for upper levels).
WHEEL_SLOTS = 64
#: Number of cascading levels; each level covers SLOTS^level ticks.
WHEEL_LEVELS = 4


class TimerError(RuntimeError):
    """Invalid timer operations (re-arming an armed timer, ...)."""


@dataclass
class Timer:
    """One armed timer."""

    timer_id: int
    expires_tick: int
    callback: Optional[Callable[[], None]] = None
    cancelled: bool = False
    fired: bool = False


@dataclass
class TimerWheel:
    """The hierarchical wheel for one simulated kernel.

    ``hz`` sets tick granularity: with HZ=250 a tick is 4 ms.  Timers are
    placed by tick distance; far-future timers live in outer levels and
    cascade inward as time advances.
    """

    hz: int = 250
    current_tick: int = 0
    _levels: List[Dict[int, List[Timer]]] = field(
        default_factory=lambda: [dict() for _ in range(WHEEL_LEVELS)]
    )
    _timers: Dict[int, Timer] = field(default_factory=dict)
    _next_id: int = 1
    fired_count: int = 0
    cascade_count: int = 0

    @property
    def tick_ns(self) -> float:
        return 1e9 / self.hz

    # -- arming/cancelling ---------------------------------------------------

    def arm_after_ticks(self, ticks: int,
                        callback: Optional[Callable[[], None]] = None) -> Timer:
        if ticks < 1:
            raise TimerError("timers must expire at least one tick out")
        timer = Timer(
            timer_id=self._next_id,
            expires_tick=self.current_tick + ticks,
            callback=callback,
        )
        self._next_id += 1
        self._timers[timer.timer_id] = timer
        self._place(timer)
        return timer

    def arm_after_ns(self, delay_ns: float,
                     callback: Optional[Callable[[], None]] = None) -> Timer:
        """Arm by wall delay; rounds up to the next tick (HZ granularity)."""
        ticks = max(1, int(-(-delay_ns // self.tick_ns)))
        return self.arm_after_ticks(ticks, callback)

    def cancel(self, timer: Timer) -> bool:
        """Cancel; returns False if it already fired or was cancelled."""
        if timer.fired or timer.cancelled:
            return False
        timer.cancelled = True
        self._timers.pop(timer.timer_id, None)
        return True

    # -- advancing time --------------------------------------------------------

    def advance(self, ticks: int) -> List[Timer]:
        """Advance the wheel, firing due timers in expiry order."""
        if ticks < 0:
            raise TimerError("time does not go backwards")
        fired: List[Timer] = []
        for _ in range(ticks):
            self.current_tick += 1
            fired.extend(self._expire_slot())
        return fired

    def advance_ns(self, duration_ns: float) -> List[Timer]:
        return self.advance(int(duration_ns // self.tick_ns))

    def bind_clock(self, clock) -> "TimerWheel":
        """Drive this wheel from a :class:`VirtualClock`.

        Registers a listener on *clock* that advances the wheel by the
        number of whole ticks elapsed since binding, so every layer that
        moves the guest's clock (syscalls, boot phases, TCP charges)
        implicitly ticks the kernel's timer subsystem -- the HZ-granular
        view of the same timeline.  Returns the wheel for chaining.

        Rebase semantics: a non-forward move (backward ``jump_to``, the
        legacy ``clock_ns = 0.0`` reset idiom) cannot un-fire timers, so
        the wheel re-anchors -- the current tick count maps to the new
        ``now`` and subsequent forward time ticks from there.  Without
        this the wheel kept a stale tick base and went silent until the
        clock re-crossed its old high-water mark.
        """
        base_tick = self.current_tick
        base_ns = clock.now_ns
        last_ns = clock.now_ns

        def _sync(now_ns: float) -> None:
            nonlocal base_tick, base_ns, last_ns
            if now_ns < last_ns:
                # Backward rebase: anchor the present tick to the new now.
                base_tick = self.current_tick
                base_ns = now_ns
            last_ns = now_ns
            target = base_tick + int((now_ns - base_ns) // self.tick_ns)
            if target > self.current_tick:
                self.advance(target - self.current_tick)

        clock.add_listener(_sync)
        return self

    @property
    def pending_count(self) -> int:
        return len(self._timers)

    # -- internals ----------------------------------------------------------------

    def _level_for(self, distance: int) -> int:
        level = 0
        span = WHEEL_SLOTS
        while distance >= span and level < WHEEL_LEVELS - 1:
            level += 1
            span *= WHEEL_SLOTS
        return level

    def _place(self, timer: Timer) -> None:
        distance = timer.expires_tick - self.current_tick
        level = self._level_for(distance)
        slot = (timer.expires_tick // (WHEEL_SLOTS ** level)) % WHEEL_SLOTS
        self._levels[level].setdefault(slot, []).append(timer)

    def _expire_slot(self) -> List[Timer]:
        fired: List[Timer] = []
        slot = self.current_tick % WHEEL_SLOTS
        bucket = self._levels[0].pop(slot, [])
        for timer in bucket:
            if timer.cancelled:
                continue
            if timer.expires_tick > self.current_tick:
                self._place(timer)  # re-place (wrapped around)
                continue
            timer.fired = True
            self._timers.pop(timer.timer_id, None)
            self.fired_count += 1
            if timer.callback is not None:
                timer.callback()
            fired.append(timer)
        # Cascade outer levels when their boundary is crossed.
        for level in range(1, WHEEL_LEVELS):
            span = WHEEL_SLOTS ** level
            if self.current_tick % span:
                break
            outer_slot = (self.current_tick // span) % WHEEL_SLOTS
            for timer in self._levels[level].pop(outer_slot, []):
                if not timer.cancelled:
                    self.cascade_count += 1
                    if timer.expires_tick <= self.current_tick:
                        timer.fired = True
                        self._timers.pop(timer.timer_id, None)
                        self.fired_count += 1
                        if timer.callback is not None:
                            timer.callback()
                        fired.append(timer)
                    else:
                        self._place(timer)
        return fired
