"""Figure 4 bench: breakdown of removed microVM options by category."""

from repro.experiments import fig4_breakdown
from repro.metrics.reporting import render_table


def test_fig4_option_breakdown(benchmark, record_result):
    results = benchmark(fig4_breakdown.run)
    record_result("fig4", render_table(fig4_breakdown.table()))
    assert (results["app"], results["mp"], results["hw"]) == (311, 89, 150)
    assert results["lupine-base"] == 283
