"""Figure 4 bench: breakdown of removed microVM options by category."""

from repro.harness import get_experiment


def test_fig4_option_breakdown(benchmark, record_result):
    experiment = get_experiment("fig4")
    results = benchmark(experiment.run)
    artifact = experiment.artifact()
    record_result("fig4", artifact.text, figure=artifact.figure)
    assert (results["app"], results["mp"], results["hw"]) == (311, 89, 150)
    assert results["lupine-base"] == 283
