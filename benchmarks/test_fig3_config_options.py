"""Figure 3 bench: config options per directory (total/microvm/lupine-base)."""

from repro.harness import get_experiment


def test_fig3_config_options(benchmark, record_result):
    experiment = get_experiment("fig3")
    results = benchmark(experiment.run)
    artifact = experiment.artifact()
    record_result("fig3", artifact.text, figure=artifact.figure)
    assert sum(results["total"].values()) == 15953
    assert sum(results["microvm"].values()) == 833
    assert sum(results["lupine-base"].values()) == 283
