"""Figure 3 bench: config options per directory (total/microvm/lupine-base)."""

from repro.experiments import fig3_config_options
from repro.metrics.reporting import render_table


def test_fig3_config_options(benchmark, record_result):
    results = benchmark(fig3_config_options.run)
    record_result("fig3", render_table(fig3_config_options.table()))
    assert sum(results["total"].values()) == 15953
    assert sum(results["microvm"].values()) == 833
    assert sum(results["lupine-base"].values()) == 283
