"""Benchmark harness support.

Each benchmark regenerates one paper table/figure: it times the experiment
with pytest-benchmark and writes the rendered rows/series (the same ones the
paper reports) to ``benchmarks/output/<id>.txt`` as well as echoing them to
stdout (visible with ``pytest -s`` or in the captured output section).
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def record_result(output_dir):
    """Write a rendered table/figure to the output directory and stdout.

    When a :class:`~repro.metrics.reporting.Figure` is passed alongside the
    text, a gnuplot-ready ``.dat`` file is written too.
    """

    def _record(experiment_id: str, text: str, figure=None) -> None:
        path = output_dir / f"{experiment_id}.txt"
        path.write_text(text + "\n")
        if figure is not None:
            from repro.metrics.dataexport import figure_to_dat

            (output_dir / f"{experiment_id}.dat").write_text(
                figure_to_dat(figure)
            )
        print(f"\n{text}\n[written to {path}]")

    return _record
