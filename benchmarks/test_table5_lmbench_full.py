"""Table 5 bench: full lmbench suite, microVM vs lupine-general."""

from repro.harness import get_experiment


def test_table5_lmbench_full(benchmark, record_result):
    experiment = get_experiment("table5")
    reports = benchmark(experiment.run)
    artifact = experiment.artifact()
    record_result("table5", artifact.text, figure=artifact.figure)
    microvm = reports["microvm"]
    general = reports["lupine-general"]
    assert general.latencies_us["null call"] < microvm.latencies_us["null call"]
    assert general.latencies_us["TCP conn"] < microvm.latencies_us["TCP conn"]
