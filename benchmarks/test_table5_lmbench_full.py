"""Table 5 bench: full lmbench suite, microVM vs lupine-general."""

from repro.experiments import table5_lmbench
from repro.metrics.reporting import render_table


def test_table5_lmbench_full(benchmark, record_result):
    reports = benchmark(table5_lmbench.run)
    record_result("table5", render_table(table5_lmbench.table()))
    microvm = reports["microvm"]
    general = reports["lupine-general"]
    assert general.latencies_us["null call"] < microvm.latencies_us["null call"]
    assert general.latencies_us["TCP conn"] < microvm.latencies_us["TCP conn"]
