"""Figure 5 bench: growth of the option union across apps."""

from repro.harness import get_experiment


def test_fig5_option_growth(benchmark, record_result):
    experiment = get_experiment("fig5")
    growth = benchmark(experiment.run)
    artifact = experiment.artifact()
    record_result("fig5", artifact.text, figure=artifact.figure)
    assert growth[0] == 13 and growth[-1] == 19
