"""Figure 5 bench: growth of the option union across apps."""

from repro.experiments import fig5_growth
from repro.metrics.reporting import render_figure


def test_fig5_option_growth(benchmark, record_result):
    growth = benchmark(fig5_growth.run)
    figure = fig5_growth.figure()
    record_result("fig5", render_figure(figure), figure=figure)
    assert growth[0] == 13 and growth[-1] == 19
