"""Figure 12 bench: perf messaging with threads vs processes."""

from repro.experiments import fig12_ctxsw
from repro.metrics.reporting import render_figure


def test_fig12_context_switch(benchmark, record_result):
    benchmark(fig12_ctxsw.run)
    figure = fig12_ctxsw.figure()
    record_result("fig12", render_figure(figure), figure=figure)
    assert fig12_ctxsw.max_process_penalty() <= 0.03
