"""Figure 12 bench: perf messaging with threads vs processes."""

from repro.experiments import fig12_ctxsw
from repro.harness import get_experiment


def test_fig12_context_switch(benchmark, record_result):
    experiment = get_experiment("fig12")
    benchmark(experiment.run)
    artifact = experiment.artifact()
    record_result("fig12", artifact.text, figure=artifact.figure)
    assert fig12_ctxsw.max_process_penalty() <= 0.03
