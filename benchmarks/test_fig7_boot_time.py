"""Figure 7 bench: boot time for hello world across systems."""

from repro.experiments import fig7_boot_time
from repro.metrics.reporting import render_figure


def test_fig7_boot_time(benchmark, record_result):
    results = benchmark(fig7_boot_time.run)
    figure = fig7_boot_time.figure()
    record_result("fig7", render_figure(figure), figure=figure)
    assert results["lupine-nokml"] < 0.5 * results["microvm"]
    assert results["osv-zfs"] > 3 * results["osv-rofs"]
