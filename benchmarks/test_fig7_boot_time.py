"""Figure 7 bench: boot time for hello world across systems."""

from repro.harness import get_experiment


def test_fig7_boot_time(benchmark, record_result):
    experiment = get_experiment("fig7")
    results = benchmark(experiment.run)
    artifact = experiment.artifact()
    record_result("fig7", artifact.text, figure=artifact.figure)
    assert results["lupine-nokml"] < 0.5 * results["microvm"]
    assert results["osv-zfs"] > 3 * results["osv-rofs"]
