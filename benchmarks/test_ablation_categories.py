"""Ablation bench: what each removal category buys (DESIGN.md §6).

Starting from microVM, remove one Figure 4 category at a time and measure
image size and boot time -- quantifying which class of options pays for the
unikernel-like properties.
"""

from repro.boot.bootsim import BootSimulator
from repro.core.classification import classify_microvm_options
from repro.kbuild.builder import KernelBuilder
from repro.kconfig.database import build_linux_tree, microvm_option_names
from repro.kconfig.resolver import Resolver
from repro.metrics.reporting import Table, render_table
from repro.vmm.monitor import firecracker


def _ablate():
    tree = build_linux_tree()
    classification = classify_microvm_options()
    simulator = BootSimulator(monitor_setup_ms=firecracker().setup_ms)
    builder = KernelBuilder()
    rows = {}

    def measure(label, names):
        config = Resolver(tree).resolve_names(names, name=label)
        image = builder.build(config)
        boot = simulator.boot(image)
        rows[label] = (len(config.enabled), image.size_mb, boot.total_ms)

    microvm_names = microvm_option_names()
    measure("microvm (full)", microvm_names)
    for category in ("app", "mp", "hw"):
        removed = classification.removed_by_category[category]
        measure(
            f"microvm - {category}",
            [n for n in microvm_names if n not in removed],
        )
    measure("lupine-base", sorted(classification.lupine_base))
    return rows


def test_ablation_categories(benchmark, record_result):
    rows = benchmark(_ablate)
    table = Table(
        title="Ablation: removing one Figure 4 category at a time",
        headers=["configuration", "options", "image MB", "boot ms"],
    )
    for label, (options, size_mb, boot_ms) in rows.items():
        table.add_row(label, options, size_mb, boot_ms)
    record_result("ablation_categories", render_table(table))

    full = rows["microvm (full)"]
    base = rows["lupine-base"]
    assert base[1] < full[1] and base[2] < full[2]
    # Hardware management buys the most boot time; app-specific the most size.
    hw = rows["microvm - hw"]
    app = rows["microvm - app"]
    mp = rows["microvm - mp"]
    assert full[2] - hw[2] > full[2] - mp[2]
    assert full[1] - app[1] > full[1] - mp[1]
