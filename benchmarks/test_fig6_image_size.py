"""Figure 6 bench: kernel image size for hello world across systems."""

from repro.harness import get_experiment


def test_fig6_image_size(benchmark, record_result):
    experiment = get_experiment("fig6")
    results = benchmark(experiment.run)
    artifact = experiment.artifact()
    record_result("fig6", artifact.text, figure=artifact.figure)
    assert 0.24 <= results["lupine"] / results["microvm"] <= 0.31
    assert results["lupine-general"] < results["osv"] < results["rump"]
