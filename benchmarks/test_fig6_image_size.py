"""Figure 6 bench: kernel image size for hello world across systems."""

from repro.experiments import fig6_image_size
from repro.metrics.reporting import render_figure


def test_fig6_image_size(benchmark, record_result):
    results = benchmark(fig6_image_size.run)
    figure = fig6_image_size.figure()
    record_result("fig6", render_figure(figure), figure=figure)
    assert 0.24 <= results["lupine"] / results["microvm"] <= 0.31
    assert results["lupine-general"] < results["osv"] < results["rump"]
