"""Table 3 bench: per-app options atop lupine-base for the top-20 apps."""

from repro.experiments import table3_top20
from repro.metrics.reporting import render_table


def test_table3_top20_apps(benchmark, record_result):
    counts = benchmark(table3_top20.run)
    record_result("table3", render_table(table3_top20.table()))
    assert counts["nginx"] == 13 and counts["elasticsearch"] == 12
    assert len(counts) == 20
