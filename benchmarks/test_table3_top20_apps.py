"""Table 3 bench: per-app options atop lupine-base for the top-20 apps."""

from repro.harness import get_experiment


def test_table3_top20_apps(benchmark, record_result):
    experiment = get_experiment("table3")
    counts = benchmark(experiment.run)
    artifact = experiment.artifact()
    record_result("table3", artifact.text, figure=artifact.figure)
    assert counts["nginx"] == 13 and counts["elasticsearch"] == 12
    assert len(counts) == 20
