"""Figure 11 bench: syscall latency vs background control processes."""

from repro.harness import get_experiment


def test_fig11_control_processes(benchmark, record_result):
    experiment = get_experiment("fig11")
    series = benchmark(experiment.run)
    artifact = experiment.artifact()
    record_result("fig11", artifact.text, figure=artifact.figure)
    for name, points in series.items():
        values = [value for _, value in points]
        assert max(values) - min(values) <= 0.02 * max(values), name
