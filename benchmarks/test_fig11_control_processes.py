"""Figure 11 bench: syscall latency vs background control processes."""

from repro.experiments import fig11_control
from repro.metrics.reporting import render_figure


def test_fig11_control_processes(benchmark, record_result):
    series = benchmark(fig11_control.run)
    figure = fig11_control.figure()
    record_result("fig11", render_figure(figure), figure=figure)
    for name, points in series.items():
        values = [value for _, value in points]
        assert max(values) - min(values) <= 0.02 * max(values), name
