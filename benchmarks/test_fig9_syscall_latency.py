"""Figure 9 bench: lmbench null/read/write latency across systems."""

from repro.experiments import fig9_syscalls
from repro.metrics.reporting import render_figure


def test_fig9_syscall_latency(benchmark, record_result):
    results = benchmark(fig9_syscalls.run)
    figure = fig9_syscalls.figure()
    record_result("fig9", render_figure(figure), figure=figure)
    assert 0.50 <= fig9_syscalls.specialization_improvement() <= 0.60
    assert 0.35 <= fig9_syscalls.kml_improvement() <= 0.45
    assert results["osv"]["read"] > results["microvm"]["read"]
