"""Figure 9 bench: lmbench null/read/write latency across systems."""

from repro.experiments import fig9_syscalls
from repro.harness import get_experiment


def test_fig9_syscall_latency(benchmark, record_result):
    experiment = get_experiment("fig9")
    results = benchmark(experiment.run)
    artifact = experiment.artifact()
    record_result("fig9", artifact.text, figure=artifact.figure)
    assert 0.50 <= fig9_syscalls.specialization_improvement() <= 0.60
    assert 0.35 <= fig9_syscalls.kml_improvement() <= 0.45
    assert results["osv"]["read"] > results["microvm"]["read"]
