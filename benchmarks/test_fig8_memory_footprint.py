"""Figure 8 bench: memory footprint (hello/nginx/redis) across systems."""

from repro.experiments import fig8_memory
from repro.metrics.reporting import render_figure


def test_fig8_memory_footprint(benchmark, record_result):
    results = benchmark(fig8_memory.run)
    figure = fig8_memory.figure()
    record_result("fig8", render_figure(figure), figure=figure)
    assert results["lupine"]["hello-world"] < results["microvm"]["hello-world"]
    assert results["hermitux"]["nginx"] is None
    for system in ("hermitux", "osv", "rump"):
        assert results[system]["redis"] > results["lupine"]["redis"]
