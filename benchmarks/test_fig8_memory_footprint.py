"""Figure 8 bench: memory footprint (hello/nginx/redis) across systems."""

from repro.harness import get_experiment


def test_fig8_memory_footprint(benchmark, record_result):
    experiment = get_experiment("fig8")
    results = benchmark(experiment.run)
    artifact = experiment.artifact()
    record_result("fig8", artifact.text, figure=artifact.figure)
    assert results["lupine"]["hello-world"] < results["microvm"]["hello-world"]
    assert results["hermitux"]["nginx"] is None
    for system in ("hermitux", "osv", "rump"):
        assert results[system]["redis"] > results["lupine"]["redis"]
