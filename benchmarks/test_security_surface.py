"""Extension bench: attack surface and CVE nullification per config.

Not a paper table -- reproduces the two quantified security claims the
paper cites from related work (Section 7): ~89% CVE nullification
(Alharthi et al.) and 50-85% attack-surface reduction (Kurmus et al.).
"""

from repro.harness import get_experiment


def test_security_surface(benchmark, record_result):
    experiment = get_experiment("ext-security")
    reports = benchmark(experiment.run)
    artifact = experiment.artifact()
    record_result("ext_security", artifact.text, figure=artifact.figure)
    base, microvm = reports["lupine-base"], reports["microvm"]
    assert 0.85 <= base.nullification_rate <= 0.92
    assert 0.50 <= base.surface_reduction_vs(microvm) <= 0.85
