"""Extension bench: attack surface and CVE nullification per config.

Not a paper table -- reproduces the two quantified security claims the
paper cites from related work (Section 7): ~89% CVE nullification
(Alharthi et al.) and 50-85% attack-surface reduction (Kurmus et al.).
"""

from repro.core.specialization import lupine_general_config
from repro.kconfig.configs import lupine_base_config, microvm_config
from repro.metrics.reporting import Table, render_table
from repro.security import analyze_config


def _run():
    return {
        "microvm": analyze_config(microvm_config()),
        "lupine-base": analyze_config(lupine_base_config()),
        "lupine-general": analyze_config(lupine_general_config()),
    }


def test_security_surface(benchmark, record_result):
    reports = benchmark(_run)
    table = Table(
        title="Extension: attack surface & CVE nullification",
        headers=["config", "surface MB", "syscalls", "CVEs nullified %"],
    )
    for name, report in reports.items():
        table.add_row(
            name,
            report.surface_kb / 1024.0,
            report.reachable_syscalls,
            report.nullification_rate * 100.0,
        )
    record_result("security_surface", render_table(table))
    base, microvm = reports["lupine-base"], reports["microvm"]
    assert 0.85 <= base.nullification_rate <= 0.92
    assert 0.50 <= base.surface_reduction_vs(microvm) <= 0.85
