"""Extension bench: serverless cold-start latency across systems."""

from repro.harness import get_experiment


def test_ext_coldstart(benchmark, record_result):
    experiment = get_experiment("ext-coldstart")
    results = benchmark(experiment.run)
    artifact = experiment.artifact()
    record_result("ext_coldstart", artifact.text, figure=artifact.figure)
    assert results["lupine-nokml"].total_ms < results["microvm"].total_ms
    assert results["lupine-nokml"].total_ms < 35.0
