"""Extension bench: serverless cold-start latency across systems."""

from repro.metrics.reporting import Table, render_table
from repro.workloads.coldstart import run_cold_starts


def test_ext_coldstart(benchmark, record_result):
    results = benchmark(run_cold_starts)
    table = Table(
        title="Extension: serverless cold start (redis function)",
        headers=["system", "boot ms", "app init ms", "first req ms",
                 "total ms"],
    )
    for result in sorted(results.values(), key=lambda r: r.total_ms):
        table.add_row(result.system, result.boot_ms, result.app_init_ms,
                      result.first_request_ms, result.total_ms)
    record_result("ext_coldstart", render_table(table))
    assert results["lupine-nokml"].total_ms < results["microvm"].total_ms
    assert results["lupine-nokml"].total_ms < 35.0
