"""Figure 10 bench: KML improvement vs busy-wait iterations."""

from repro.experiments import fig10_kml
from repro.metrics.reporting import render_figure


def test_fig10_kml_amortization(benchmark, record_result):
    points = benchmark(fig10_kml.run)
    figure = fig10_kml.figure()
    record_result("fig10", render_figure(figure), figure=figure)
    as_dict = dict(points)
    assert 0.35 <= as_dict[0] <= 0.45
    assert as_dict[160] < 0.05
