"""Figure 10 bench: KML improvement vs busy-wait iterations."""

from repro.harness import get_experiment


def test_fig10_kml_amortization(benchmark, record_result):
    experiment = get_experiment("fig10")
    points = benchmark(experiment.run)
    artifact = experiment.artifact()
    record_result("fig10", artifact.text, figure=artifact.figure)
    as_dict = dict(points)
    assert 0.35 <= as_dict[0] <= 0.45
    assert as_dict[160] < 0.05
