"""Ablation bench: KPTI syscall cost and PARAVIRT boot cost.

Reproduces the two single-option observations the paper calls out:

- Section 3.1.2: with KPTI "we measured a 10x slowdown in system call
  latency";
- Section 4.3: CONFIG_PARAVIRT is "a primary enabler of fast boot time"
  (without it Lupine's boot jumps from ~23 ms to ~71 ms).
"""

from repro.boot.bootsim import BootSimulator
from repro.core.variants import Variant, build_variant
from repro.kconfig.database import base_option_names, build_linux_tree
from repro.kconfig.resolver import Resolver
from repro.kbuild.builder import KernelBuilder
from repro.metrics.reporting import Table, render_table
from repro.syscall.dispatch import SyscallEngine
from repro.syscall.lmbench import null_latency_us
from repro.vmm.monitor import firecracker


def _run_kpti():
    tree = build_linux_tree()
    config = Resolver(tree).resolve_names(
        base_option_names() + ["PAGE_TABLE_ISOLATION"], name="base+kpti"
    )
    without = null_latency_us(SyscallEngine.for_config(config.enabled))
    with_kpti = null_latency_us(
        SyscallEngine.for_config(config.enabled, kpti=True)
    )
    return without, with_kpti


def _run_paravirt():
    simulator = BootSimulator(monitor_setup_ms=firecracker().setup_ms)
    with_pv = simulator.boot(
        build_variant(Variant.LUPINE_NOKML).image
    ).total_ms
    tree = build_linux_tree()
    no_pv_names = [
        n for n in base_option_names()
        if n not in ("PARAVIRT", "PARAVIRT_CLOCK", "KVM_GUEST")
    ]
    config = Resolver(tree).resolve_names(no_pv_names, name="base-nopv")
    without_pv = simulator.boot(KernelBuilder().build(config)).total_ms
    return with_pv, without_pv


def test_ablation_kpti(benchmark, record_result):
    without, with_kpti = benchmark(_run_kpti)
    table = Table("Ablation: KPTI null-syscall latency",
                  headers=["configuration", "null us"])
    table.add_row("no KPTI", without)
    table.add_row("KPTI", with_kpti)
    record_result("ablation_kpti", render_table(table))
    assert 8 <= with_kpti / without <= 12  # paper: 10x


def test_ablation_paravirt(benchmark, record_result):
    with_pv, without_pv = benchmark(_run_paravirt)
    table = Table("Ablation: CONFIG_PARAVIRT boot time",
                  headers=["configuration", "boot ms"])
    table.add_row("PARAVIRT", with_pv)
    table.add_row("no PARAVIRT", without_pv)
    record_result("ablation_paravirt", render_table(table))
    assert without_pv - with_pv > 40  # the ~48 ms TSC calibration loop
