"""Table 4 bench: redis/nginx throughput normalized to microVM."""

from repro.experiments import table4_apps
from repro.metrics.reporting import render_table


def test_table4_app_performance(benchmark, record_result):
    results = benchmark(table4_apps.run)
    record_result("table4", render_table(table4_apps.table()))
    lupine = results["lupine"]
    assert all(lupine[column] > 1.1 for column in table4_apps.COLUMNS)
    assert results["hermitux"]["nginx-conn"] is None
    assert results["rump"]["nginx-conn"] > 1.0 > results["rump"]["nginx-sess"]
