"""Table 4 bench: redis/nginx throughput normalized to microVM."""

from repro.experiments import table4_apps
from repro.harness import get_experiment


def test_table4_app_performance(benchmark, record_result):
    experiment = get_experiment("table4")
    results = benchmark(experiment.run)
    artifact = experiment.artifact()
    record_result("table4", artifact.text, figure=artifact.figure)
    lupine = results["lupine"]
    assert all(lupine[column] > 1.1 for column in table4_apps.COLUMNS)
    assert results["hermitux"]["nginx-conn"] is None
    assert results["rump"]["nginx-conn"] > 1.0 > results["rump"]["nginx-sess"]
