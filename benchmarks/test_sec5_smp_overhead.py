"""Section 5 bench: SMP overhead on a single processor."""

from repro.experiments import sec5_smp
from repro.metrics.reporting import render_table


def test_sec5_smp_overhead(benchmark, record_result):
    results = benchmark(sec5_smp.run)
    record_result("sec5", render_table(sec5_smp.table()))
    assert all(o <= 0.03 for _, o in results["sem_posix"])
    assert all(o <= 0.08 for _, o in results["futex"])
    assert all(o <= 0.03 for _, o in results["make-j"])
