"""Section 5 bench: SMP overhead on a single processor."""

from repro.harness import get_experiment


def test_sec5_smp_overhead(benchmark, record_result):
    experiment = get_experiment("sec5")
    results = benchmark(experiment.run)
    artifact = experiment.artifact()
    record_result("sec5", artifact.text, figure=artifact.figure)
    assert all(o <= 0.03 for _, o in results["sem_posix"])
    assert all(o <= 0.08 for _, o in results["futex"])
    assert all(o <= 0.03 for _, o in results["make-j"])
