"""Table 1 bench: config options that enable/disable system calls."""

from repro.experiments import table1_syscall_options
from repro.metrics.reporting import render_table


def test_table1_syscall_options(benchmark, record_result):
    rows = benchmark(table1_syscall_options.run)
    record_result("table1", render_table(table1_syscall_options.table()))
    assert len(rows) == 12
    assert "madvise" in rows["ADVISE_SYSCALLS"]
