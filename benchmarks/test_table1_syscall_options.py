"""Table 1 bench: config options that enable/disable system calls."""

from repro.harness import get_experiment


def test_table1_syscall_options(benchmark, record_result):
    experiment = get_experiment("table1")
    rows = benchmark(experiment.run)
    artifact = experiment.artifact()
    record_result("table1", artifact.text, figure=artifact.figure)
    assert len(rows) == 12
    assert "madvise" in rows["ADVISE_SYSCALLS"]
