"""Extension bench: memcached and pgbench on Lupine vs microVM.

Not paper tables -- extension workloads exercising the same machinery
(memcached: EVENTFD/EPOLL event loop; pgbench: the multi-process SysV-IPC
path the unikernel domain excludes).
"""

from repro.apps.registry import get_app
from repro.core.variants import Variant, build_microvm, build_variant
from repro.metrics.reporting import Table, render_table
from repro.workloads.memcached import MemtierBenchmark
from repro.workloads.pgbench import PgBench
from repro.workloads.server import LinuxServerStack


def _stack(build):
    return LinuxServerStack(
        engine=build.syscall_engine(), netpath=build.network_path()
    )


def _run():
    microvm = build_microvm()
    memcached = build_variant(Variant.LUPINE, get_app("memcached"))
    postgres = build_variant(Variant.LUPINE, get_app("postgres"))
    memtier = MemtierBenchmark(1000)
    pgbench = PgBench(transactions=300)
    return {
        "memcached-get": (
            memtier.get_rps(_stack(memcached)),
            memtier.get_rps(_stack(microvm)),
        ),
        "memcached-set": (
            memtier.set_rps(_stack(memcached)),
            memtier.set_rps(_stack(microvm)),
        ),
        "pgbench-tpcb": (
            pgbench.tps(_stack(postgres)),
            pgbench.tps(_stack(microvm)),
        ),
    }


def test_ext_workloads(benchmark, record_result):
    results = benchmark(_run)
    table = Table(
        title="Extension: memcached & pgbench, Lupine vs microVM",
        headers=["workload", "lupine req/s", "microvm req/s", "speedup"],
    )
    for name, (lupine, microvm) in results.items():
        table.add_row(name, lupine, microvm, lupine / microvm)
    record_result("ext_workloads", render_table(table))
    for name, (lupine, microvm) in results.items():
        assert lupine > microvm, name
