"""Setup shim: enables legacy editable installs where PEP 660 is unavailable
(offline environments without the `wheel` package)."""

from setuptools import setup

setup()
