#!/usr/bin/env python3
"""Single-time-authority lint: one virtual clock, no private timelines.

Since the ``repro.simcore`` refactor, simulated time has exactly one
authority: :class:`repro.simcore.clock.VirtualClock` (reached ambiently
through :func:`repro.simcore.context.current_clock`).  This AST lint
keeps it that way across ``src/repro``:

- **no-sim-advance** -- calling ``<anything>.sim.advance(...)`` (i.e.
  ``TRACER.sim.advance``) outside the time-authority modules.  The
  tracer's sim axis is a read-only *view* of the active guest clock;
  advancing time through it would bypass the clock's event queue and
  deadline dispatch.
- **no-clock-field** -- declaring a class-level accumulator field named
  like a timeline (``clock_ns``, ``time_us``, ``now_ms``, ...) outside
  the time-authority modules.  Layers hold a ``clock: VirtualClock`` and
  advance it; read-only ``clock_ns`` *properties* over that clock are
  fine (and are how legacy call sites keep working).
- **no-direct-clock-in-fleet** -- constructing a ``VirtualClock``
  directly inside a fleet code path (:data:`FLEET_PATHS`).  Fleet guests
  must obtain clocks from the global
  :class:`repro.simcore.eventcore.EventCore` (``core.clock_for(name)``)
  so every fleet timeline is registered with -- and order-visible to --
  the one global event heap.  Standalone layers elsewhere may still
  default-construct private clocks for isolated tests.

Allowed locations: ``repro/simcore`` (the authority itself) and
``repro/observe`` (the tracer view).  Run:
``python tools/lint_time.py`` (exit 1 on violations); wired into
``tools/check.sh`` and CI.
"""

from __future__ import annotations

import ast
import pathlib
import re
import sys
from typing import Iterator, List, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"

#: Directories (relative to src/repro) allowed to own or advance time.
ALLOWED = ("simcore", "observe")

#: Fleet code paths (relative to src/repro): modules that orchestrate
#: many guests and therefore must source clocks from the EventCore.
#: Entries ending in "/" cover a whole directory (every module of the
#: traffic layer routes across fleet timelines).  ``harness/shardpool.py``
#: is fleet code too: shard workers rebuild fleet slices and must draw
#: guest clocks from their fold-local EventCore, never construct them.
#: The ``traffic/`` entry also covers the usage-recording hooks
#: (``router.py`` attaching ``UsageTrace`` recorders to worker guests):
#: recorders count exercised syscalls/options, never time, so they stay
#: clean under both lints by construction.
FLEET_PATHS = ("core/orchestrator.py", "harness/shardpool.py", "traffic/")

#: Class-level field names that smell like a private timeline.  Duration
#: parameters and result records (``deadline_ms``, ``elapsed_ns``, ...)
#: are fine -- the lint targets *accumulating* now-state.
CLOCK_FIELD = re.compile(r"^_?(clock|now|time)_(ns|us|ms|s)$")


def _is_sim_advance(node: ast.Call) -> bool:
    """True for any ``<expr>.sim.advance(...)`` call."""
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "advance"
        and isinstance(func.value, ast.Attribute)
        and func.value.attr == "sim"
    )


def _class_field_names(class_node: ast.ClassDef) -> Iterator[Tuple[str, int]]:
    """Names declared as class-level fields (dataclass-style or plain)."""
    for statement in class_node.body:
        if isinstance(statement, ast.AnnAssign):
            if isinstance(statement.target, ast.Name):
                yield statement.target.id, statement.lineno
        elif isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    yield target.id, target.lineno


def _is_clock_construction(node: ast.Call) -> bool:
    """True for ``VirtualClock(...)`` / ``clock.VirtualClock(...)`` calls."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "VirtualClock"
    return isinstance(func, ast.Attribute) and func.attr == "VirtualClock"


def lint_file(path: pathlib.Path, fleet_path: bool = False) -> List[str]:
    relative = path.relative_to(REPO_ROOT)
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(relative))
    violations = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and _is_sim_advance(node):
            violations.append(
                f"{relative}:{node.lineno}: [no-sim-advance] advancing "
                "time through the tracer's sim view; advance "
                "repro.simcore.context.current_clock() instead"
            )
        elif (fleet_path and isinstance(node, ast.Call)
                and _is_clock_construction(node)):
            violations.append(
                f"{relative}:{node.lineno}: [no-direct-clock-in-fleet] "
                "fleet code constructs a VirtualClock directly; obtain "
                "guest clocks from EventCore.clock_for(name) so the "
                "global event heap sees every fleet timeline"
            )
        elif isinstance(node, ast.ClassDef):
            for name, lineno in _class_field_names(node):
                if CLOCK_FIELD.match(name):
                    violations.append(
                        f"{relative}:{lineno}: [no-clock-field] class "
                        f"{node.name} declares private timeline field "
                        f"{name!r}; hold a 'clock: VirtualClock' and "
                        "advance that (expose a read-only property if "
                        "legacy callers need the name)"
                    )
    return violations


def _is_fleet_path(posix_relative: str) -> bool:
    """True when the module falls under a :data:`FLEET_PATHS` entry."""
    for entry in FLEET_PATHS:
        if entry.endswith("/"):
            if posix_relative.startswith(entry):
                return True
        elif posix_relative == entry:
            return True
    return False


def lint_tree() -> List[str]:
    violations: List[str] = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        relative = path.relative_to(SRC_ROOT)
        if relative.parts and relative.parts[0] in ALLOWED:
            continue
        violations.extend(lint_file(
            path, fleet_path=_is_fleet_path(relative.as_posix())
        ))
    return violations


def main() -> int:
    violations = lint_tree()
    for violation in violations:
        print(violation, file=sys.stderr)
    if violations:
        print(f"lint_time: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print(f"lint_time: ok (single time authority holds across "
          f"{sum(1 for _ in SRC_ROOT.rglob('*.py'))} files)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
