#!/usr/bin/env python3
"""Dead-link check for the repo's markdown documentation.

Walks the navigable docs -- ``README.md``, ``DESIGN.md``,
``EXPERIMENTS.md``, ``ROADMAP.md`` and everything under ``docs/`` -- and
verifies that every *relative* markdown link resolves to a real file or
directory in the repository.  External links (``http://``, ``https://``,
``mailto:``) and pure in-page anchors (``#section``) are skipped; a
``path#fragment`` link is checked for the path only.

The point: the README/docs cross-link mesh is the system's navigation
surface, and a rename that strands a link should fail CI the same way a
broken import does.  Run ``python tools/check_docs_links.py`` (exit 1 on
dead links); wired into ``tools/check.sh``.
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import Iterator, List, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Documents whose links must stay alive.  ``docs/`` is globbed whole.
DOC_FILES = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md")
DOC_DIRS = ("docs",)

#: Inline markdown links: ``[text](target)``.  Good enough for our docs
#: -- no reference-style links, no angle-bracket targets.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Targets that are not repo-relative paths.
EXTERNAL = re.compile(r"^(https?|mailto|ftp):")


def doc_paths() -> Iterator[pathlib.Path]:
    for name in DOC_FILES:
        path = REPO_ROOT / name
        if path.is_file():
            yield path
    for name in DOC_DIRS:
        yield from sorted((REPO_ROOT / name).glob("*.md"))


def relative_links(path: pathlib.Path) -> Iterator[Tuple[int, str]]:
    """(line number, target) for each relative link in *path*."""
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for match in LINK.finditer(line):
            target = match.group(1)
            if EXTERNAL.match(target) or target.startswith("#"):
                continue
            yield lineno, target


def check_links() -> List[str]:
    failures: List[str] = []
    checked = 0
    for path in doc_paths():
        for lineno, target in relative_links(path):
            checked += 1
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                failures.append(
                    f"{path.relative_to(REPO_ROOT)}:{lineno}: dead link "
                    f"-> {target}"
                )
    if not failures:
        print(f"check_docs_links: ok ({checked} relative links resolve)")
    return failures


def main() -> int:
    failures = check_links()
    for failure in failures:
        print(failure, file=sys.stderr)
    if failures:
        print(f"check_docs_links: {len(failures)} dead link(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
