#!/usr/bin/env python3
"""Fault-site registry drift check: code and docs must agree.

Every fault-injection site is a string literal at its call site
(``with fault_site("kbuild.build"): ...`` or
``corrupt_text("resultcache.load", text)``), and every site is
documented in a site table in ``docs/RESILIENCE.md``.  Nothing ties the
two together at runtime -- an undocumented site silently escapes the
chaos schedules' coverage story, and a documented-but-unwired site
makes the docs lie -- so this check walks both and fails on drift in
either direction:

- **undocumented** -- a ``fault_site(...)``/``corrupt_text(...)``
  string literal wired somewhere under ``src/repro`` whose site name
  appears in no RESILIENCE.md table;
- **unwired** -- a site name documented in a RESILIENCE.md table that
  no code path marks any more.

Site names are collected from the first backticked cell of markdown
table rows, filtered to dotted lowercase tokens (``layer.event``), so
prose mentions and fault-*kind* tables don't count as registry entries.
Run: ``python tools/check_fault_sites.py`` (exit 1 on drift); wired
into ``tools/check.sh`` and CI.
"""

from __future__ import annotations

import ast
import pathlib
import re
import sys
from typing import Dict, List, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"
DOC_PATH = REPO_ROOT / "docs" / "RESILIENCE.md"

#: The functions whose first string argument names a fault site.
MARKERS = ("fault_site", "corrupt_text")

#: A registry entry: the first backticked cell of a table row, holding
#: a dotted lowercase token.
TABLE_SITE = re.compile(r"^\|\s*`([a-z_]+\.[a-z_]+)`\s*\|")


def _marker_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def wired_sites() -> Dict[str, List[Tuple[str, int]]]:
    """Map site name -> [(file, line), ...] for every marked call site."""
    sites: Dict[str, List[Tuple[str, int]]] = {}
    for path in sorted(SRC_ROOT.rglob("*.py")):
        relative = str(path.relative_to(REPO_ROOT))
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=relative)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if _marker_name(node) not in MARKERS:
                continue
            if not node.args:
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value,
                                                             str):
                sites.setdefault(first.value, []).append(
                    (relative, node.lineno)
                )
    return sites


def documented_sites(doc_path: pathlib.Path = DOC_PATH) -> Dict[str, int]:
    """Map site name -> line number of its table row in the doc."""
    sites: Dict[str, int] = {}
    for lineno, line in enumerate(
            doc_path.read_text(encoding="utf-8").splitlines(), start=1):
        match = TABLE_SITE.match(line)
        if match:
            sites.setdefault(match.group(1), lineno)
    return sites


def check_drift() -> List[str]:
    wired = wired_sites()
    documented = documented_sites()
    doc_relative = DOC_PATH.relative_to(REPO_ROOT)
    violations = []
    for site in sorted(set(wired) - set(documented)):
        where = ", ".join(f"{f}:{n}" for f, n in wired[site])
        violations.append(
            f"[undocumented] fault site {site!r} is wired at {where} but "
            f"missing from the {doc_relative} site tables"
        )
    for site in sorted(set(documented) - set(wired)):
        violations.append(
            f"[unwired] {doc_relative}:{documented[site]} documents fault "
            f"site {site!r}, but no fault_site()/corrupt_text() call in "
            f"src/repro marks it"
        )
    return violations


def main() -> int:
    violations = check_drift()
    for violation in violations:
        print(violation, file=sys.stderr)
    if violations:
        print(f"check_fault_sites: {len(violations)} drift(s)",
              file=sys.stderr)
        return 1
    print(f"check_fault_sites: ok ({len(wired_sites())} sites wired and "
          f"documented)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
