#!/bin/sh
# Repo health check: tier-1 tests plus the EXPERIMENTS.md generator.
#
# The generator is deliberately run from a temporary working directory to
# guard the sys.path bootstrap in tools/generate_experiments_md.py -- it
# must locate the repro package regardless of the caller's cwd.
set -eu

REPO_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

echo "==> tier-1 test suite"
(cd "$REPO_ROOT" && PYTHONPATH=src python -m pytest -q)

echo "==> EXPERIMENTS.md generator (from a temp cwd, no PYTHONPATH)"
TMP_DIR=$(mktemp -d)
trap 'rm -rf "$TMP_DIR"' EXIT
(cd "$TMP_DIR" && python "$REPO_ROOT/tools/generate_experiments_md.py" --jobs 2)
test -s "$TMP_DIR/EXPERIMENTS.md"
grep -q "Running the experiments" "$TMP_DIR/EXPERIMENTS.md"

echo "==> all checks passed"
