#!/bin/sh
# Repo health check: tier-1 tests, the EXPERIMENTS.md generator, the
# observability perf gate, and the chaos (fault-injection) gate.
#
# The generator is deliberately run from a temporary working directory to
# guard the sys.path bootstrap in tools/generate_experiments_md.py -- it
# must locate the repro package regardless of the caller's cwd.
#
# The perf gate runs run-all twice into a scratch directory (first run
# warms the result cache, second run must be fully warm) and compares the
# warm run's cost counters against benchmarks/baseline/metrics.json with
# timings disabled, so it holds on any machine.  Artifacts from the warm
# run are left in $RUN_DIR for CI to archive (override with
# CHECK_RUN_DIR).
#
# The resolver gate runs the differential suite (worklist engine vs the
# full-sweep oracle), then bench-resolve --check (warm-start must beat 20
# cold sweeps by >= 10x on visited options; cache hits must do zero
# resolution work) and regresses the resulting counters against
# benchmarks/baseline/BENCH_resolve.json.
#
# The single-time-authority lint (tools/lint_time.py) enforces the
# simcore invariant: no simulator advances time through the tracer's sim
# view or keeps a private clock accumulator field.
#
# The fleet gate runs bench-guests --check --global-loop twice -- at
# --jobs 2 and again at --jobs 7 -- and regresses both runs against the
# same benchmarks/baseline/BENCH_guests.json.  Each run asserts the
# fleet scale/kernel-sharing criteria, that the cohort-vectorized and
# sharded 10k-guest fleets reproduce their single-process oracles'
# manifest digests, and the sharded throughput floor; regressing both
# job counts against one pinned digests section is the shard-determinism
# gate (same seed => byte-identical merged manifest for any job count).
#
# The serving gate runs bench-serve --check (the canonical 100k-request
# diurnal trace per warm-pool policy, each run twice: manifests must
# reproduce byte-identically, scale-to-zero must cold-boot >= 1000
# guests with a nonzero cold-start fraction, the fixed pool must buy
# the latency tail back, and the chaos scenario must recover -- nonzero
# restarts/retries, error rate below the injected fault mass, request
# conservation) and regresses its counters and digests against
# benchmarks/baseline/BENCH_serve.json.
#
# The chaos-serve gate (repro-lupine chaos-serve) reruns the canonical
# serving trace under the stock seeded guest-fault schedule and asserts
# the serving resilience invariants: faulted reruns and the --jobs
# policy sweep are byte-identical, and an installed-but-empty fault
# plane reproduces the committed BENCH_serve.json digests exactly.
#
# The derive gate runs bench-derive --check twice -- at --jobs 2 and
# --jobs 3 -- and regresses both runs against the same
# benchmarks/baseline/BENCH_derive.json.  Each run records every top-20
# app's usage, derives a config from the observation and audits it:
# 100% coverage of recorded usage, enabled-option count within 1.5x the
# curated config, and byte-identical usage/config/report digests across
# in-bench reruns; regressing both job counts against one pinned
# digests section is the derive fan-out-determinism gate (see
# docs/SPECIALIZATION.md).
#
# The fault-site drift check (tools/check_fault_sites.py) cross-checks
# every fault_site()/corrupt_text() literal wired in src/ against the
# site table in docs/RESILIENCE.md, both directions.
#
# No PYTHONHASHSEED pin anywhere: every config-option float fold
# iterates its frozenset sorted, so all manifest digests are hash-seed
# independent (tests/test_golden_parity.py and the shard tests pin this).
#
# The docs-link check (tools/check_docs_links.py) fails on any relative
# markdown link in README.md/DESIGN.md/EXPERIMENTS.md/ROADMAP.md/docs/
# that no longer resolves to a file in the repository.
#
# The chaos gate runs the full suite twice under the same seeded fault
# schedule (repro-lupine chaos) and asserts the resilience invariants:
# every experiment ends with a definite status, manifest/trace/metrics
# always land, no stray temp files, and the two sub-runs are
# byte-identical (see docs/RESILIENCE.md).  The warm run-all + regression
# gate above doubles as the zero-fault invariant: with no fault plane
# installed, counters (0 failures, 0 retries, 0 injected faults) must
# match benchmarks/baseline/metrics.json.
set -eu

REPO_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

echo "==> single-time-authority lint"
python "$REPO_ROOT/tools/lint_time.py"

echo "==> docs dead-link check"
python "$REPO_ROOT/tools/check_docs_links.py"

echo "==> fault-site registry drift check"
python "$REPO_ROOT/tools/check_fault_sites.py"

echo "==> tier-1 test suite"
(cd "$REPO_ROOT" && PYTHONPATH=src python -m pytest -q)

echo "==> EXPERIMENTS.md generator (from a temp cwd, no PYTHONPATH)"
TMP_DIR=$(mktemp -d)
trap 'rm -rf "$TMP_DIR"' EXIT
(cd "$TMP_DIR" && python "$REPO_ROOT/tools/generate_experiments_md.py" --jobs 2)
test -s "$TMP_DIR/EXPERIMENTS.md"
grep -q "Running the experiments" "$TMP_DIR/EXPERIMENTS.md"
grep -q "Run manifest schema" "$TMP_DIR/EXPERIMENTS.md"

echo "==> resolver differential suite (worklist vs sweep oracle)"
(cd "$REPO_ROOT" && PYTHONPATH=src python -m pytest -q \
    tests/kconfig/test_resolver_differential.py)

echo "==> warm run-all + regression gate"
RUN_DIR=${CHECK_RUN_DIR:-"$TMP_DIR/run"}
cd "$REPO_ROOT"
PYTHONPATH=src python -m repro.cli run-all --jobs 2 --output-dir "$RUN_DIR" \
    > /dev/null
PYTHONPATH=src python -m repro.cli run-all --jobs 2 --output-dir "$RUN_DIR"
test -s "$RUN_DIR/trace.json"
test -s "$RUN_DIR/metrics.json"
test -s "$RUN_DIR/run_manifest.json"
PYTHONPATH=src python -m repro.observe.regress \
    benchmarks/baseline "$RUN_DIR" --no-timings

echo "==> chaos gate (seeded fault schedule, 2 sub-runs, byte-identical)"
PYTHONPATH=src python -m repro.cli chaos --seed 1234 \
    --output-dir "$TMP_DIR/chaos"

echo "==> resolver microbenchmark + counter gate"
PYTHONPATH=src python -m repro.cli bench-resolve --check \
    --output-dir "$RUN_DIR"
PYTHONPATH=src python -m repro.observe.regress \
    benchmarks/baseline/BENCH_resolve.json "$RUN_DIR/BENCH_resolve.json" \
    --no-timings

echo "==> fleet-simulation microbenchmark + sharded/cohort + counter gate"
PYTHONPATH=src python -m repro.cli bench-guests --check \
    --global-loop --jobs 2 --output-dir "$RUN_DIR"
PYTHONPATH=src python -m repro.observe.regress \
    benchmarks/baseline/BENCH_guests.json "$RUN_DIR/BENCH_guests.json" \
    --no-timings

echo "==> fleet shard-determinism gate (same digests at --jobs 7)"
PYTHONPATH=src python -m repro.cli bench-guests --check \
    --global-loop --jobs 7 --output-dir "$TMP_DIR/jobs7"
PYTHONPATH=src python -m repro.observe.regress \
    benchmarks/baseline/BENCH_guests.json "$TMP_DIR/jobs7/BENCH_guests.json" \
    --no-timings

echo "==> traffic-serving microbenchmark + determinism + counter gate"
PYTHONPATH=src python -m repro.cli bench-serve --check \
    --output-dir "$RUN_DIR"
PYTHONPATH=src python -m repro.observe.regress \
    benchmarks/baseline/BENCH_serve.json "$RUN_DIR/BENCH_serve.json" \
    --no-timings

echo "==> chaos-serve gate (seeded guest faults, rerun/jobs/zero-fault)"
PYTHONPATH=src python -m repro.cli chaos-serve --seed 77 --jobs 2

echo "==> trace-driven derivation gate (coverage, option ratio, digests)"
PYTHONPATH=src python -m repro.cli bench-derive --check \
    --jobs 2 --output-dir "$RUN_DIR"
PYTHONPATH=src python -m repro.observe.regress \
    benchmarks/baseline/BENCH_derive.json "$RUN_DIR/BENCH_derive.json" \
    --no-timings

echo "==> derive fan-out-determinism gate (same digests at --jobs 3)"
PYTHONPATH=src python -m repro.cli bench-derive --check \
    --jobs 3 --output-dir "$TMP_DIR/derive-jobs3"
PYTHONPATH=src python -m repro.observe.regress \
    benchmarks/baseline/BENCH_derive.json \
    "$TMP_DIR/derive-jobs3/BENCH_derive.json" \
    --no-timings

echo "==> all checks passed"
